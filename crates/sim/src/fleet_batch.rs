//! Batched structure-of-arrays execution of homogeneous fleet cohorts.
//!
//! A fleet of thousands of *identical* devices (same [`PowerModel`], same
//! [`ServiceModel`], same [`crate::fleet::FleetPolicy`]) pays the dynamic
//! path's per-device overheads — one boxed [`qdpm_core::PowerManager`] and
//! one boxed [`qdpm_workload::RequestGenerator`] virtual call per slice,
//! one `VecDeque` queue, one heap-allocated simulator — thousands of times
//! per slice for code that is byte-for-byte the same. A [`CohortSim`]
//! strips that overhead: it holds the whole cohort's dynamic state as flat
//! arrays (device modes, ring queues, idle timers, service progress,
//! per-device RNG streams) plus one striped [`BatchLearner`] for Q-DPM
//! cohorts, resolves the policy *once* per run, and steps every member of
//! a slice through a monomorphized copy of the engine's clean step body.
//!
//! # Exactness contract
//!
//! A cohort run is **bit-exact** against the dynamic path: the step body
//! replicates [`crate::Simulator`]'s clean specialization (`NOISY=false`,
//! `RECORD=false`, [`crate::EngineMode::PerSlice`]) operation for
//! operation, each member keeps the *same* policy and service RNG streams
//! the dynamic path would seed
//! ([`derive_cell_seed`]`(fleet_seed, global_index)` plus the simulator's
//! per-stream offsets), arrivals come from the *same*
//! [`WorkloadDispatcher`] partition (packaged as one [`CohortArrivals`]
//! index list by `split_grouped` instead of per-device traces), and
//! per-device [`RunStats`] are folded by the same [`RunStats::record`]
//! call. The fleet conformance suite pins batched ≡ dynamic ≡ event-skip
//! to equal f64 bits.
//!
//! [`WorkloadDispatcher`]: qdpm_workload::WorkloadDispatcher

use rand::rngs::StdRng;
use rand::SeedableRng;

use qdpm_core::rng_util::uniform;
use qdpm_core::{
    BatchLearner, DpmStateEncoder, LegalActionTable, Observation, PowerManager, RewardWeights,
    StateEncoder, StepOutcome,
};
use qdpm_device::{
    scaled_completion, DeviceMode, DeviceState, PowerModel, PowerStateId, ServiceModel, Step,
};
use qdpm_workload::CohortArrivals;

use crate::fleet::{FleetConfig, FleetMember, FleetPolicy};
use crate::parallel::derive_cell_seed;
use crate::{policies, RunStats, SimError};

/// Whether a fleet policy can run on the batched cohort path.
///
/// Batchable policies are exactly those whose per-slice behaviour is a
/// pure function of the device's own observation and RNG stream:
/// [`FleetPolicy::AlwaysOn`], [`FleetPolicy::GreedyOff`],
/// [`FleetPolicy::BreakEvenTimeout`], [`FleetPolicy::FixedTimeout`], and
/// [`FleetPolicy::QDpm`] (per-device tables, striped in a
/// [`BatchLearner`]). The rest stay on the dynamic path:
/// [`FleetPolicy::AdaptiveTimeout`] and the oracles carry cross-slice
/// controller state the SoA loop does not model, and
/// [`FleetPolicy::QosQDpm`] / [`FleetPolicy::SharedQDpm`] learn through
/// machinery (Lagrange multiplier, shared table) that is not per-device.
#[must_use]
pub fn is_batchable(policy: &FleetPolicy) -> bool {
    matches!(
        policy,
        FleetPolicy::AlwaysOn
            | FleetPolicy::GreedyOff
            | FleetPolicy::BreakEvenTimeout
            | FleetPolicy::FixedTimeout(_)
            | FleetPolicy::QDpm(_)
    )
}

/// Partitions a member list into batched cohorts: maximal groups of ≥ 2
/// devices agreeing on power model, service model, and (batchable)
/// policy, each listed in ascending global device order. Singletons and
/// non-batchable members are left for the dynamic path.
#[must_use]
pub(crate) fn group_cohorts(members: &[FleetMember]) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut reps: Vec<usize> = Vec::new();
    for (index, member) in members.iter().enumerate() {
        if !is_batchable(&member.policy) {
            continue;
        }
        match reps.iter().position(|&r| {
            let rep = &members[r];
            rep.power == member.power
                && rep.service == member.service
                && rep.policy == member.policy
        }) {
            Some(g) => groups[g].push(index),
            None => {
                reps.push(index);
                groups.push(vec![index]);
            }
        }
    }
    groups.retain(|g| g.len() >= 2);
    groups
}

/// The per-slice decision/feedback interface the monomorphized cohort
/// loop drives — the batched analogue of [`PowerManager`], with the
/// device's cohort-local index threaded through so learners can address
/// their table stripe.
trait BatchPolicy {
    /// Announces that the loop is about to run `device`'s stretch —
    /// stateful policies drop any cross-slice caches carried over from
    /// the previous device.
    fn begin_device(&mut self, _device: usize) {}

    /// Chooses the command for `device`'s current slice.
    fn decide(&mut self, device: usize, obs: &Observation, rng: &mut StdRng) -> PowerStateId;

    /// Receives the outcome of `device`'s slice (paired with the
    /// immediately preceding `decide` for the same device).
    fn observe(&mut self, device: usize, outcome: &StepOutcome, next_obs: &Observation);
}

/// Stateless heuristics share one instance across the cohort: their
/// [`PowerManager`] impls read only the observation.
macro_rules! stateless_batch_policy {
    ($ty:ty) => {
        impl BatchPolicy for $ty {
            #[inline]
            fn decide(
                &mut self,
                _device: usize,
                obs: &Observation,
                rng: &mut StdRng,
            ) -> PowerStateId {
                PowerManager::decide(self, obs, rng)
            }

            #[inline]
            fn observe(&mut self, _device: usize, _outcome: &StepOutcome, _next_obs: &Observation) {
            }
        }
    };
}

stateless_batch_policy!(policies::AlwaysOn);
stateless_batch_policy!(policies::GreedyOff);
stateless_batch_policy!(policies::FixedTimeout);

/// The cohort's Q-DPM brain: one striped [`BatchLearner`] plus the shared
/// encoder and legal-action table — the batched counterpart of N
/// [`qdpm_core::QDpmAgent`]s.
#[derive(Debug)]
struct QDpmBatch {
    learner: BatchLearner,
    encoder: DpmStateEncoder,
    legal: LegalActionTable,
    /// The agent-side reward weights (from the member's
    /// [`qdpm_core::QDpmConfig`], which may differ from the fleet's
    /// metrics weights).
    weights: RewardWeights,
    /// `(state, action)` of the in-flight decide, slice-local: in the
    /// per-slice engine every decide is answered by an observe within the
    /// same device step.
    pending: (usize, usize),
    /// Encoded state carried from the previous slice's `next_obs` to the
    /// next `decide` of the *same device stretch*. Nothing mutates the
    /// device between `observe(t)` and `decide(t + 1)` and the
    /// observation never reads the wall clock, so the two observations
    /// are identical and re-encoding would be pure waste. Reset by
    /// [`BatchPolicy::begin_device`].
    cached_s: Option<usize>,
}

impl BatchPolicy for QDpmBatch {
    #[inline]
    fn begin_device(&mut self, _device: usize) {
        self.cached_s = None;
    }

    #[inline]
    fn decide(&mut self, device: usize, obs: &Observation, rng: &mut StdRng) -> PowerStateId {
        let s = match self.cached_s {
            Some(s) => s,
            None => self.encoder.encode(obs),
        };
        let a = self
            .learner
            .select_action(device, s, self.legal.legal(obs.device_mode), rng);
        self.pending = (s, a);
        PowerStateId::from_index(a)
    }

    #[inline]
    fn observe(&mut self, device: usize, outcome: &StepOutcome, next_obs: &Observation) {
        let (s, a) = self.pending;
        let reward = self.weights.reward(outcome);
        let next_s = self.encoder.encode(next_obs);
        self.learner.update(
            device,
            s,
            a,
            reward,
            next_s,
            self.legal.legal(next_obs.device_mode),
        );
        self.cached_s = Some(next_s);
    }
}

/// The policy of a cohort, resolved once at construction; `run` matches
/// on it a single time and drives a fully monomorphized loop.
#[derive(Debug)]
enum CohortPolicy {
    AlwaysOn(policies::AlwaysOn),
    GreedyOff(policies::GreedyOff),
    FixedTimeout(policies::FixedTimeout),
    QDpm(Box<QDpmBatch>),
}

/// The cohort's dynamic state, structure-of-arrays: every per-device
/// field of the dynamic [`crate::Simulator`] flattened into one `Vec`
/// indexed by cohort-local device index. The run loop is *device-major*
/// — each device's whole stretch runs before the next device starts, so
/// its state, ring queue, RNG streams, and Q-table stripe stay cache-hot
/// — which is sound because cohort devices never interact within a
/// slice (the dispatcher fixed each device's arrivals ahead of time, and
/// nothing in the step body reads another device's state or the wall
/// clock).
#[derive(Debug)]
struct Soa {
    power: PowerModel,
    service: ServiceModel,
    weights: RewardWeights,
    queue_cap: usize,
    /// Device modes + in-flight transitions (the extracted
    /// [`DeviceState`] POD both paths share).
    states: Vec<DeviceState>,
    /// Ring-queue arrival timestamps, `n * queue_cap`, device-major.
    q_buf: Vec<Step>,
    /// Ring-queue head offsets.
    q_head: Vec<u32>,
    /// Ring-queue lengths.
    q_len: Vec<u32>,
    /// Consecutive arrival-free slices per device.
    idle: Vec<u64>,
    /// Deterministic-service progress per device.
    progress: Vec<u32>,
    /// Per-device policy RNG streams (same seeds as the dynamic path).
    rng_policy: Vec<StdRng>,
    /// Per-device service RNG streams.
    rng_service: Vec<StdRng>,
    /// Per-device statistics, folded by [`RunStats::record`].
    stats: Vec<RunStats>,
    /// Per-device arrival events `(slice, count)`, slice-ascending,
    /// stored CSR-style: device `i`'s events are
    /// `ev[ev_offsets[i]..ev_offsets[i + 1]]`.
    ev: Vec<(Step, u32)>,
    /// CSR row offsets into [`Soa::ev`], length `n + 1`.
    ev_offsets: Vec<usize>,
    /// Per-device cursor into its event row (consumed events), so
    /// stretch runs compose.
    ev_cursor: Vec<usize>,
    /// First unsimulated slice (devices advance in lockstep across
    /// `run` calls: each call steps every device the same horizon).
    now: Step,
}

/// One device's whole stretch — the engine's clean step body
/// (`step_impl::<false, false>`) iterated slice by slice over hoisted
/// field borrows, operation for operation: decide, command, arrivals,
/// tick, service, accounting, feedback.
#[allow(clippy::too_many_arguments)]
#[inline]
fn run_device<P: BatchPolicy>(
    policy: &mut P,
    device: usize,
    power: &PowerModel,
    service: ServiceModel,
    weights: &RewardWeights,
    cap: usize,
    state: &mut DeviceState,
    q: &mut [Step],
    q_head: &mut u32,
    q_len: &mut u32,
    idle: &mut u64,
    progress: &mut u32,
    rng_policy: &mut StdRng,
    rng_service: &mut StdRng,
    stats: &mut RunStats,
    events: &[(Step, u32)],
    cursor: &mut usize,
    start: Step,
    end: Step,
) {
    policy.begin_device(device);
    for now in start..end {
        // 1. Decide from the slice-opening observation.
        let obs = Observation {
            device_mode: state.mode,
            queue_len: *q_len as usize,
            idle_slices: *idle,
            sr_mode_hint: None,
        };
        let command = policy.decide(device, &obs, rng_policy);

        // 2. Command takes effect; instant switches pay now.
        let cmd_energy = state.command(power, command).immediate_energy();

        // 3. Arrivals from this device's dispatched event row.
        let arrivals = if *cursor < events.len() && events[*cursor].0 == now {
            let count = events[*cursor].1;
            *cursor += 1;
            count
        } else {
            0
        };
        let mut dropped = 0u32;
        for _ in 0..arrivals {
            if *q_len as usize == cap {
                dropped += 1;
            } else {
                // head + len < 2 * cap, so one conditional subtract
                // replaces the modulo.
                let mut slot = *q_head as usize + *q_len as usize;
                if slot >= cap {
                    slot -= cap;
                }
                q[slot] = now;
                *q_len += 1;
            }
        }
        *idle = if arrivals > 0 { 0 } else { *idle + 1 };

        // 4. Device elapses the slice.
        let tick = state.tick(power);

        // 5. Service: the uniform draw happens exactly when the dynamic
        //    path would draw it.
        let mut completed = 0u32;
        let mut wait_of_completed = 0u64;
        if tick.can_serve && *q_len > 0 {
            let u = uniform(rng_service);
            let served = match service {
                // The serving state's operating point scales the geometric
                // completion law exactly as the dynamic engine's
                // `Server::advance_scaled` does (identity at nominal
                // frequency), keeping cohort and dynamic paths bit-exact
                // for DVFS models too.
                ServiceModel::Geometric { p } => {
                    u < scaled_completion(p, state.operating_freq(power))
                }
                ServiceModel::Deterministic { steps } => {
                    *progress += 1;
                    if *progress >= steps {
                        *progress = 0;
                        true
                    } else {
                        false
                    }
                }
            };
            if served {
                let arrived = q[*q_head as usize];
                let next_head = *q_head as usize + 1;
                *q_head = if next_head == cap {
                    0
                } else {
                    next_head as u32
                };
                *q_len -= 1;
                wait_of_completed = now.saturating_sub(arrived);
                completed = 1;
            }
        }

        // 6. Accounting and feedback.
        let outcome = StepOutcome {
            energy: cmd_energy + tick.energy,
            queue_len: *q_len as usize,
            dropped,
            completed,
            arrivals,
            deadline_misses: 0,
        };
        stats.record(&outcome, weights, wait_of_completed);
        let next_obs = Observation {
            device_mode: state.mode,
            queue_len: *q_len as usize,
            idle_slices: *idle,
            sr_mode_hint: None,
        };
        policy.observe(device, &outcome, &next_obs);
    }
}

/// The monomorphized cohort loop, device-major: each device runs its
/// whole stretch over its own event row before the next device starts.
fn run_batch<P: BatchPolicy>(soa: &mut Soa, policy: &mut P, horizon: Step) {
    let start = soa.now;
    let end = start + horizon;
    let cap = soa.queue_cap;
    for device in 0..soa.states.len() {
        run_device(
            policy,
            device,
            &soa.power,
            soa.service,
            &soa.weights,
            cap,
            &mut soa.states[device],
            &mut soa.q_buf[device * cap..(device + 1) * cap],
            &mut soa.q_head[device],
            &mut soa.q_len[device],
            &mut soa.idle[device],
            &mut soa.progress[device],
            &mut soa.rng_policy[device],
            &mut soa.rng_service[device],
            &mut soa.stats[device],
            &soa.ev[soa.ev_offsets[device]..soa.ev_offsets[device + 1]],
            &mut soa.ev_cursor[device],
            start,
            end,
        );
    }
    soa.now = end;
}

/// A homogeneous cohort of a fleet, ready to run batched: flat
/// structure-of-arrays state, one resolved policy, and the cohort's
/// shared arrival index list. Built by [`crate::FleetSim`] for every
/// eligible group of ≥ 2 identical members (see
/// [`is_batchable`]); results are bit-exact against running the same
/// members on the dynamic per-device path.
#[derive(Debug)]
pub struct CohortSim {
    soa: Soa,
    policy: CohortPolicy,
    /// Total arrivals the dispatcher assigned to this cohort.
    dispatched: u64,
    /// Global device indices of the members, ascending (local index `i`
    /// is global device `global_indices[i]`).
    global_indices: Vec<usize>,
}

impl CohortSim {
    /// Assembles a cohort from its representative member (`member` — all
    /// members of a cohort are equal by construction), the members'
    /// global device indices, and the cohort's dispatched arrivals.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for a non-batchable policy, a zero queue
    /// capacity, invalid learner parameters, or an arrival list whose
    /// size disagrees with `global_indices`.
    pub fn new(
        member: &FleetMember,
        global_indices: Vec<usize>,
        arrivals: CohortArrivals,
        config: &FleetConfig,
    ) -> Result<Self, SimError> {
        let n = global_indices.len();
        if n == 0 {
            return Err(SimError::BadConfig("a cohort needs members".to_string()));
        }
        if arrivals.n_devices() != n {
            return Err(SimError::BadConfig(format!(
                "cohort arrivals cover {} devices, cohort has {n}",
                arrivals.n_devices()
            )));
        }
        if config.queue_cap == 0 {
            return Err(SimError::BadConfig(
                "queue capacity must be positive".to_string(),
            ));
        }
        let power = &member.power;
        let policy = match &member.policy {
            FleetPolicy::AlwaysOn => CohortPolicy::AlwaysOn(policies::AlwaysOn::new(power)),
            FleetPolicy::GreedyOff => CohortPolicy::GreedyOff(policies::GreedyOff::new(power)),
            FleetPolicy::BreakEvenTimeout => {
                CohortPolicy::FixedTimeout(policies::FixedTimeout::break_even(power))
            }
            FleetPolicy::FixedTimeout(t) => {
                CohortPolicy::FixedTimeout(policies::FixedTimeout::new(power, *t))
            }
            FleetPolicy::QDpm(agent_config) => {
                let encoder = agent_config.encoder_for(power)?;
                let learner = BatchLearner::new(
                    n,
                    encoder.n_states(),
                    power.n_states(),
                    agent_config.discount,
                    agent_config.learning_rate,
                    agent_config.exploration,
                )?;
                CohortPolicy::QDpm(Box::new(QDpmBatch {
                    learner,
                    encoder,
                    legal: LegalActionTable::new(power),
                    weights: agent_config.weights,
                    pending: (0, 0),
                    cached_s: None,
                }))
            }
            other => {
                return Err(SimError::BadConfig(format!(
                    "policy {} cannot run batched",
                    other.name()
                )))
            }
        };
        // Exactly the dynamic path's seeding: device `g` derives its
        // simulator seed from the fleet seed, and the simulator offsets
        // the policy and service streams.
        let rng_policy = global_indices
            .iter()
            .map(|&g| {
                StdRng::seed_from_u64(
                    derive_cell_seed(config.seed, g as u64).wrapping_add(0x9e37_79b9),
                )
            })
            .collect();
        let rng_service = global_indices
            .iter()
            .map(|&g| {
                StdRng::seed_from_u64(
                    derive_cell_seed(config.seed, g as u64).wrapping_add(0x3c6e_f372),
                )
            })
            .collect();
        // Scatter the cohort index list into CSR per-device event rows
        // (input is slice-ascending, so each row comes out slice-sorted).
        let mut row_len = vec![0usize; n];
        for &(_, local, _) in arrivals.events() {
            row_len[local as usize] += 1;
        }
        let mut ev_offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        ev_offsets.push(0);
        for len in &row_len {
            acc += len;
            ev_offsets.push(acc);
        }
        let mut ev = vec![(0u64, 0u32); acc];
        let mut fill = ev_offsets.clone();
        for &(slice, local, count) in arrivals.events() {
            ev[fill[local as usize]] = (slice, count);
            fill[local as usize] += 1;
        }
        Ok(CohortSim {
            soa: Soa {
                power: member.power.clone(),
                service: member.service,
                weights: config.weights,
                queue_cap: config.queue_cap,
                states: vec![DeviceState::new(&member.power); n],
                q_buf: vec![0; n * config.queue_cap],
                q_head: vec![0; n],
                q_len: vec![0; n],
                idle: vec![0; n],
                progress: vec![0; n],
                rng_policy,
                rng_service,
                stats: vec![RunStats::new(); n],
                ev,
                ev_offsets,
                ev_cursor: vec![0; n],
                now: 0,
            },
            policy,
            dispatched: arrivals.total_arrivals(),
            global_indices,
        })
    }

    /// Number of devices in the cohort.
    #[must_use]
    pub fn len(&self) -> usize {
        self.global_indices.len()
    }

    /// Whether the cohort has no devices (never true once constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.global_indices.is_empty()
    }

    /// Total arrivals dispatched to this cohort over the horizon.
    #[must_use]
    pub fn dispatched_arrivals(&self) -> u64 {
        self.dispatched
    }

    /// Global device indices of the members, ascending.
    #[must_use]
    pub fn global_indices(&self) -> &[usize] {
        &self.global_indices
    }

    /// Steps every member through `horizon` slices and returns
    /// `(global index, stats, final mode)` per device in cohort-local
    /// (ascending global) order. Stretch statistics compose: a second
    /// call continues from where the first stopped, like
    /// [`crate::Simulator::run`].
    pub fn run(&mut self, horizon: Step) -> Vec<(usize, RunStats, DeviceMode)> {
        let before: Vec<RunStats> = self.soa.stats.clone();
        match &mut self.policy {
            CohortPolicy::AlwaysOn(p) => run_batch(&mut self.soa, p, horizon),
            CohortPolicy::GreedyOff(p) => run_batch(&mut self.soa, p, horizon),
            CohortPolicy::FixedTimeout(p) => run_batch(&mut self.soa, p, horizon),
            CohortPolicy::QDpm(p) => run_batch(&mut self.soa, p.as_mut(), horizon),
        }
        self.global_indices
            .iter()
            .enumerate()
            .map(|(i, &g)| {
                let mut stretch = self.soa.stats[i].clone();
                let past = &before[i];
                stretch = RunStats {
                    steps: stretch.steps - past.steps,
                    total_energy: stretch.total_energy - past.total_energy,
                    total_cost: stretch.total_cost - past.total_cost,
                    arrivals: stretch.arrivals - past.arrivals,
                    completed: stretch.completed - past.completed,
                    dropped: stretch.dropped - past.dropped,
                    queue_len_sum: stretch.queue_len_sum - past.queue_len_sum,
                    total_wait: stretch.total_wait - past.total_wait,
                };
                (g, stretch, self.soa.states[i].mode)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{FleetReport, FleetSim};
    use crate::parallel::ScenarioWorkload;
    use qdpm_core::{Exploration, QDpmConfig};
    use qdpm_device::presets;
    use qdpm_workload::{DispatchPolicy, WorkloadSpec};

    fn bernoulli(p: f64) -> ScenarioWorkload {
        ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(p).unwrap())
    }

    fn uniform_fleet(n: usize, policy: FleetPolicy) -> Vec<FleetMember> {
        (0..n)
            .map(|i| FleetMember {
                label: format!("dev-{i}"),
                power: presets::three_state_generic(),
                service: presets::default_service(),
                policy: policy.clone(),
            })
            .collect()
    }

    fn run_both(members: &[FleetMember], config: &FleetConfig) -> (FleetReport, FleetReport) {
        let workload = bernoulli(0.3);
        let batched = FleetSim::new(members, &workload, config).unwrap();
        assert!(batched.batched_cohorts() > 0, "cohorts expected");
        let dynamic = FleetSim::new(
            members,
            &workload,
            &FleetConfig {
                batch_cohorts: false,
                ..config.clone()
            },
        )
        .unwrap();
        assert_eq!(dynamic.batched_cohorts(), 0);
        (batched.run(2), dynamic.run(2))
    }

    #[test]
    fn batchable_policies_are_the_documented_set() {
        assert!(is_batchable(&FleetPolicy::AlwaysOn));
        assert!(is_batchable(&FleetPolicy::GreedyOff));
        assert!(is_batchable(&FleetPolicy::BreakEvenTimeout));
        assert!(is_batchable(&FleetPolicy::FixedTimeout(3)));
        assert!(is_batchable(&FleetPolicy::frozen_q_dpm()));
        assert!(!is_batchable(&FleetPolicy::AdaptiveTimeout));
        assert!(!is_batchable(&FleetPolicy::Oracle));
        assert!(!is_batchable(&FleetPolicy::OraclePrewake));
        assert!(!is_batchable(&FleetPolicy::frozen_qos_q_dpm()));
        assert!(!is_batchable(&FleetPolicy::frozen_shared_q_dpm()));
    }

    #[test]
    fn grouping_is_by_exact_model_service_policy_equality() {
        let mut members = uniform_fleet(6, FleetPolicy::GreedyOff);
        members[2].power = presets::ibm_hdd();
        members[4].policy = FleetPolicy::AdaptiveTimeout; // not batchable
        members[5].service = qdpm_device::ServiceModel::deterministic(2).unwrap();
        let groups = group_cohorts(&members);
        assert_eq!(groups, vec![vec![0, 1, 3]]);
    }

    #[test]
    fn singletons_stay_dynamic() {
        let mut members = uniform_fleet(3, FleetPolicy::GreedyOff);
        members[1].policy = FleetPolicy::AlwaysOn;
        members[2].policy = FleetPolicy::FixedTimeout(4);
        assert!(group_cohorts(&members).is_empty());
    }

    #[test]
    fn batched_matches_dynamic_for_heuristic_cohorts() {
        for policy in [
            FleetPolicy::AlwaysOn,
            FleetPolicy::GreedyOff,
            FleetPolicy::BreakEvenTimeout,
            FleetPolicy::FixedTimeout(5),
        ] {
            let members = uniform_fleet(6, policy.clone());
            let config = FleetConfig {
                horizon: 2_500,
                dispatch: DispatchPolicy::LeastLoaded,
                ..FleetConfig::default()
            };
            let (batched, dynamic) = run_both(&members, &config);
            assert_eq!(batched, dynamic, "{}", policy.name());
        }
    }

    #[test]
    fn batched_matches_dynamic_for_training_q_dpm() {
        // Full exploration schedule (epsilon > 0): the batched learner
        // must consume the per-device policy streams identically.
        let members = uniform_fleet(5, FleetPolicy::QDpm(QDpmConfig::default()));
        let config = FleetConfig {
            horizon: 3_000,
            ..FleetConfig::default()
        };
        let (batched, dynamic) = run_both(&members, &config);
        assert_eq!(batched, dynamic);
    }

    #[test]
    fn batched_matches_dynamic_for_boltzmann_q_dpm() {
        let members = uniform_fleet(
            4,
            FleetPolicy::QDpm(QDpmConfig {
                exploration: Exploration::Boltzmann { temperature: 0.6 },
                ..QDpmConfig::default()
            }),
        );
        let config = FleetConfig {
            horizon: 1_500,
            ..FleetConfig::default()
        };
        let (batched, dynamic) = run_both(&members, &config);
        assert_eq!(batched, dynamic);
    }

    #[test]
    fn mixed_fleet_splits_cohorts_and_dynamic_and_matches() {
        // Two cohorts (greedy-off x3, q-dpm x2), one adaptive singleton,
        // one oracle (dynamic-only), one odd device model.
        let mut members = uniform_fleet(8, FleetPolicy::GreedyOff);
        members[1].policy = FleetPolicy::frozen_q_dpm();
        members[3].policy = FleetPolicy::frozen_q_dpm();
        members[4].policy = FleetPolicy::AdaptiveTimeout;
        members[5].policy = FleetPolicy::Oracle;
        members[6].power = presets::ibm_hdd();
        let config = FleetConfig {
            horizon: 2_000,
            dispatch: DispatchPolicy::RoundRobin,
            ..FleetConfig::default()
        };
        let workload = bernoulli(0.4);
        let batched = FleetSim::new(&members, &workload, &config).unwrap();
        assert_eq!(batched.batched_cohorts(), 2);
        let dynamic = FleetSim::new(
            &members,
            &workload,
            &FleetConfig {
                batch_cohorts: false,
                ..config
            },
        )
        .unwrap();
        assert_eq!(batched.run(3), dynamic.run(1));
    }

    #[test]
    fn deterministic_service_progress_is_tracked_per_device() {
        let mut members = uniform_fleet(4, FleetPolicy::AlwaysOn);
        for m in &mut members {
            m.service = qdpm_device::ServiceModel::deterministic(3).unwrap();
        }
        let config = FleetConfig {
            horizon: 2_000,
            ..FleetConfig::default()
        };
        let (batched, dynamic) = run_both(&members, &config);
        assert_eq!(batched, dynamic);
    }

    #[test]
    fn cohort_rejects_non_batchable_policy() {
        let member = FleetMember {
            label: "x".to_string(),
            power: presets::three_state_generic(),
            service: presets::default_service(),
            policy: FleetPolicy::AdaptiveTimeout,
        };
        let arrivals = {
            let mut d =
                qdpm_workload::WorkloadDispatcher::new(DispatchPolicy::RoundRobin, 2).unwrap();
            let mut gen = qdpm_workload::BernoulliArrivals::new(0.2).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            d.split_grouped(&mut gen, &mut rng, 100, &[vec![0, 1]])
                .cohorts
                .remove(0)
        };
        let err = CohortSim::new(&member, vec![0, 1], arrivals, &FleetConfig::default());
        assert!(matches!(err, Err(SimError::BadConfig(_))));
    }

    #[test]
    fn stretch_runs_compose_like_the_dynamic_path() {
        let members = uniform_fleet(4, FleetPolicy::frozen_q_dpm());
        let workload = bernoulli(0.3);
        let config = FleetConfig {
            horizon: 2_000,
            ..FleetConfig::default()
        };
        // One shot...
        let whole = FleetSim::new(&members, &workload, &config).unwrap().run(1);
        // ...equals accumulated stretches driven through CohortSim::run
        // directly (the FleetSim::run path runs the horizon in one call;
        // this exercises the stretch bookkeeping).
        let groups = group_cohorts(&members);
        assert_eq!(groups, vec![vec![0, 1, 2, 3]]);
        let mut dispatcher =
            qdpm_workload::WorkloadDispatcher::new(config.dispatch, members.len()).unwrap();
        let mut gen = workload.build().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let grouped = dispatcher.split_grouped(gen.as_mut(), &mut rng, config.horizon, &groups);
        let mut cohort = CohortSim::new(
            &members[0],
            groups[0].clone(),
            grouped.cohorts.into_iter().next().unwrap(),
            &config,
        )
        .unwrap();
        let first = cohort.run(800);
        let second = cohort.run(1_200);
        for (i, (g, s1, _)) in first.iter().enumerate() {
            let (g2, s2, mode2) = &second[i];
            assert_eq!(g, g2);
            assert_eq!(s1.steps + s2.steps, 2_000);
            let mut merged = s1.clone();
            merged.merge(s2);
            assert_eq!(merged, whole.per_device[*g], "device {g}");
            assert_eq!(*mode2, whole.final_modes[*g]);
        }
    }
}
