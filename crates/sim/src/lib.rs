//! Discrete-time DPM simulation engine, baseline power managers, metrics
//! and experiment runners for the Q-DPM reproduction.
//!
//! The [`Simulator`] drives any [`qdpm_core::PowerManager`] against a
//! power-managed device, a bounded service queue and a synthetic workload
//! under the exact step semantics shared with the DTMDP builder in
//! `qdpm-mdp` (see `DESIGN.md` §3) — so the "theoretically optimal policy"
//! computed from the model and the policies measured here are directly
//! comparable.
//!
//! Provided baselines ([`policies`]):
//!
//! * [`AlwaysOn`] — the energy-reduction reference;
//! * [`GreedyOff`] — sleep immediately when idle;
//! * [`FixedTimeout`] / [`AdaptiveTimeout`] — the classic heuristics;
//! * [`Oracle`] — clairvoyant per-idle-period lower bound;
//! * [`MdpPolicyController`] — executes an exact (deterministic or
//!   randomized) MDP policy;
//! * [`ModelBasedAdaptive`] — the full estimator + change-detector +
//!   re-optimizer pipeline the paper compares against in Fig. 2.
//!
//! The [`experiment`] module packages the paper's evaluation: Fig. 1
//! convergence, Fig. 2 rapid response, and the robustness sweep. The
//! [`parallel`] module scales those evaluations: a deterministic sharded
//! grid runner ([`parallel::run_indexed`]) plus the
//! [`parallel::ScenarioGrid`] abstraction over arbitrary
//! (device × workload × service × replicate) experiment grids — parallel
//! output is byte-identical to the serial path at any thread count.
//!
//! The [`fleet`] module scales along the other axis: one [`FleetSim`]
//! steps N heterogeneous devices (mixed presets, mixed policies,
//! per-device or shared Q-tables) against a single aggregate workload,
//! either strictly partitioned ahead of time by a state-blind
//! [`qdpm_workload::WorkloadDispatcher`] or routed *online* against live
//! device state, with closed-form [`FleetStats`] aggregation and a
//! [`FleetGrid`] for fleet-size sweeps. Homogeneous groups of members
//! automatically run on the [`fleet_batch`] structure-of-arrays engine —
//! one [`fleet_batch::CohortSim`] steps the whole group through a
//! monomorphized copy of the engine loop, bit-identical to the dynamic
//! path and several times faster.
//!
//! The [`hierarchy`] module stacks the datacenter layers on top: a
//! [`RackCoordinator`] enforces a rack-wide power cap over an online fleet
//! (vetoing wakeups and shedding load the budget cannot afford), and a
//! [`ClusterSim`] runs a fleet of racks behind one more dispatcher — the
//! two-level dispatch hierarchy, with per-rack [`FleetStats`] and a
//! cluster-wide ordered fold.

mod adaptive;
mod engine;
mod error;
pub mod experiment;
pub mod fleet;
pub mod fleet_batch;
pub mod hierarchy;
mod metrics;
pub mod parallel;
pub mod policies;

pub use adaptive::{AdaptiveConfig, AdaptiveSolver, ModelBasedAdaptive};
pub use engine::{EngineMode, ObservationNoise, SimConfig, Simulator};
pub use error::SimError;
pub use fleet::{
    AvailabilityStats, FleetCell, FleetConfig, FleetGrid, FleetGridParams, FleetMember,
    FleetPolicy, FleetReport, FleetSim, FleetStats,
};
pub use fleet_batch::{is_batchable, CohortSim};
pub use hierarchy::{
    ClusterConfig, ClusterReport, ClusterSim, ClusterStats, RackCoordinator, RackReport, RackSpec,
};
pub use metrics::{FaultStats, RunStats, SeriesRecorder, WindowPoint};
pub use parallel::{
    derive_cell_seed, run_indexed, GridParams, ScenarioCell, ScenarioGrid, ScenarioWorkload,
};
pub use policies::{
    AdaptiveTimeout, AlwaysOn, FixedTimeout, GreedyOff, MdpPolicyController, Oracle,
};
