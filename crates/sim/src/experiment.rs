//! High-level experiment runners reproducing the paper's evaluation.
//!
//! Each runner returns plain data; the `qdpm-bench` binaries format it as
//! TSV for plotting. The experiment IDs (F1, F2, T4, ...) are indexed in
//! `DESIGN.md` §4.

use qdpm_core::{PowerManager, QDpmAgent, QDpmConfig, RewardWeights};
use qdpm_device::{PowerModel, ServiceModel, Step};
use qdpm_mdp::{build_dpm_mdp, solvers, CostWeights};
use qdpm_workload::{PiecewiseStationary, Segment, WorkloadSpec};

use crate::parallel::{self, GridParams, ScenarioCell, ScenarioGrid, ScenarioWorkload};
use crate::policies::MdpPolicyController;
use crate::{SimConfig, SimError, Simulator, WindowPoint};

/// Result of the Fig. 1 convergence experiment.
#[derive(Debug, Clone)]
pub struct ConvergenceReport {
    /// Windowed series of the learning Q-DPM agent.
    pub qdpm: Vec<WindowPoint>,
    /// Windowed series of the model-known optimal policy, simulated on the
    /// same arrival sequence.
    pub optimal: Vec<WindowPoint>,
    /// Analytic long-run average cost of the optimal policy (RVI gain).
    pub optimal_gain: f64,
    /// Analytic long-run average cost of always-on.
    pub always_on_gain: f64,
    /// Final-window cost ratio `qdpm / optimal` (1.0 = fully converged).
    pub final_ratio: f64,
}

/// Parameters of the Fig. 1 convergence experiment.
#[derive(Debug, Clone)]
pub struct ConvergenceParams {
    /// Stationary arrival probability (Bernoulli requester).
    pub arrival_p: f64,
    /// Slices to simulate.
    pub horizon: Step,
    /// Window width of the reported series.
    pub window: Step,
    /// Queue capacity.
    pub queue_cap: usize,
    /// Reward/cost weights.
    pub weights: RewardWeights,
    /// Master seed.
    pub seed: u64,
    /// Q-DPM configuration (encoder cap is overridden to `queue_cap`).
    pub agent: QDpmConfig,
}

impl Default for ConvergenceParams {
    fn default() -> Self {
        ConvergenceParams {
            arrival_p: 0.05,
            horizon: 200_000,
            window: 2_000,
            queue_cap: 8,
            weights: RewardWeights::default(),
            seed: 7,
            agent: QDpmConfig {
                // Stationary convergence (Fig. 1) uses decaying exploration:
                // constant epsilon keeps paying random wake-ups forever,
                // bounding the online cost away from the optimum. (Fig. 2
                // keeps the paper's constant epsilon — continual
                // exploration is exactly what makes Q-DPM track parameter
                // changes.)
                exploration: qdpm_core::Exploration::DecayingEpsilon {
                    epsilon0: 0.3,
                    decay: 0.99996,
                    min_epsilon: 0.005,
                },
                ..QDpmConfig::default()
            },
        }
    }
}

/// Runs the Fig. 1 experiment: Q-DPM learning from scratch on a stationary
/// workload vs the analytic optimum with the model known in advance.
///
/// # Errors
///
/// Propagates construction and solver errors.
pub fn run_convergence(
    power: &PowerModel,
    service: &ServiceModel,
    params: &ConvergenceParams,
) -> Result<ConvergenceReport, SimError> {
    let spec = WorkloadSpec::bernoulli(params.arrival_p)?;
    let arrivals = spec.markov_model().expect("bernoulli is markovian");

    // Analytic optimum (model known a priori).
    let model = build_dpm_mdp(
        power,
        service,
        &arrivals,
        params.queue_cap,
        params.weights.drop_penalty,
    )?;
    let cost = model.mdp.combined_cost(
        CostWeights::new(params.weights.energy, params.weights.perf).map_err(SimError::Mdp)?,
    );
    let avg = solvers::relative_value_iteration(&model.mdp, &cost, 1e-9, 500_000)
        .map_err(SimError::Mdp)?;

    // Always-on gain: run the same RVI restricted via its policy? Simpler:
    // evaluate the always-on policy exactly.
    let serve = power.serving_state().index();
    let always_on = qdpm_mdp::DeterministicPolicy::new(
        (0..model.mdp.n_states())
            .map(|s| {
                let (_, dev, _) = model.space.decompose(s);
                // In transients the only legal action is the target.
                model
                    .space
                    .legal_actions(power, dev)
                    .into_iter()
                    .find(|&a| a == serve)
                    .unwrap_or_else(|| model.space.legal_actions(power, dev)[0])
            })
            .collect(),
    );
    let (always_on_gain, _) =
        solvers::evaluate_policy_average(&model.mdp, &cost, &always_on).map_err(SimError::Mdp)?;

    // Simulate Q-DPM (learning online).
    let mut agent_cfg = params.agent.clone();
    agent_cfg.queue_cap = params.queue_cap;
    agent_cfg.weights = params.weights;
    let agent = QDpmAgent::new(power, agent_cfg)?;
    let sim_cfg = SimConfig {
        queue_cap: params.queue_cap,
        weights: params.weights,
        seed: params.seed,
        expose_sr_mode: false,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(
        power.clone(),
        *service,
        spec.build(),
        Box::new(agent),
        sim_cfg.clone(),
    )?;
    sim.attach_recorder(params.window);
    sim.run(params.horizon);
    let qdpm = sim.take_series();

    // Simulate the optimal policy on the identical arrival sequence.
    let controller = MdpPolicyController::deterministic(model.space.clone(), avg.policy.clone());
    let mut sim_opt = Simulator::new(
        power.clone(),
        *service,
        spec.build(),
        Box::new(controller),
        sim_cfg,
    )?;
    sim_opt.attach_recorder(params.window);
    sim_opt.run(params.horizon);
    let optimal = sim_opt.take_series();

    let final_ratio = match (qdpm.last(), optimal.last()) {
        (Some(q), Some(o)) if o.cost_per_slice > 0.0 => q.cost_per_slice / o.cost_per_slice,
        _ => f64::NAN,
    };
    Ok(ConvergenceReport {
        qdpm,
        optimal,
        optimal_gain: avg.gain,
        always_on_gain,
        final_ratio,
    })
}

/// Replicates the F1 convergence experiment over several seeds and returns
/// each run's tail-cost ratio to the analytic optimum — the dispersion
/// behind the "approximates the theoretically optimal policy" claim.
///
/// # Errors
///
/// Propagates construction and solver errors.
pub fn convergence_ratios_over_seeds(
    power: &PowerModel,
    service: &ServiceModel,
    params: &ConvergenceParams,
    seeds: &[u64],
    tail_windows: usize,
) -> Result<Vec<f64>, SimError> {
    convergence_ratios_over_seeds_threaded(power, service, params, seeds, tail_windows, 1)
}

/// [`convergence_ratios_over_seeds`] on the parallel runner: each seed's
/// run is independent, so the returned ratios are identical at any thread
/// count (seed order is preserved).
///
/// # Errors
///
/// Propagates construction and solver errors.
pub fn convergence_ratios_over_seeds_threaded(
    power: &PowerModel,
    service: &ServiceModel,
    params: &ConvergenceParams,
    seeds: &[u64],
    tail_windows: usize,
    threads: usize,
) -> Result<Vec<f64>, SimError> {
    parallel::run_indexed(seeds, threads, |_, &seed| {
        let run = ConvergenceParams {
            seed,
            ..params.clone()
        };
        let report = run_convergence(power, service, &run)?;
        Ok(ratio_to_gain(
            tail_mean_cost(&report.qdpm, tail_windows),
            report.optimal_gain,
        ))
    })
    .into_iter()
    .collect()
}

/// Mean and sample standard deviation of a ratio collection.
#[must_use]
pub fn mean_and_sd(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    (mean, var.sqrt())
}

/// Result of the Fig. 2 rapid-response experiment.
#[derive(Debug, Clone)]
pub struct RapidResponseReport {
    /// Windowed series of Q-DPM.
    pub qdpm: Vec<WindowPoint>,
    /// Windowed series of the model-based adaptive pipeline.
    pub model_based: Vec<WindowPoint>,
    /// Windowed series of a clairvoyant per-segment optimal controller
    /// (knows each segment's true parameters, switches instantly).
    pub clairvoyant: Vec<WindowPoint>,
    /// Slice indices of the workload switching points (the vertical lines
    /// of Fig. 2).
    pub switch_points: Vec<Step>,
    /// Diagnostics from the model-based pipeline.
    pub model_based_resolves: u64,
}

/// Parameters of the Fig. 2 experiment.
#[derive(Debug, Clone)]
pub struct RapidResponseParams {
    /// The piecewise-stationary segments (duration, Bernoulli rate).
    pub segments: Vec<(Step, f64)>,
    /// Window width of the reported series.
    pub window: Step,
    /// Queue capacity.
    pub queue_cap: usize,
    /// Reward/cost weights.
    pub weights: RewardWeights,
    /// Master seed.
    pub seed: u64,
    /// Q-DPM configuration.
    pub agent: QDpmConfig,
    /// Model-based pipeline configuration.
    pub adaptive: crate::AdaptiveConfig,
}

impl Default for RapidResponseParams {
    fn default() -> Self {
        RapidResponseParams {
            segments: vec![
                (50_000, 0.02),
                (50_000, 0.25),
                (50_000, 0.05),
                (50_000, 0.15),
            ],
            window: 2_000,
            queue_cap: 8,
            weights: RewardWeights::default(),
            seed: 11,
            agent: QDpmConfig {
                // Tracking needs sustained exploration (the paper's constant
                // epsilon); 2% keeps the high-load exploration tax small.
                exploration: qdpm_core::Exploration::EpsilonGreedy { epsilon: 0.02 },
                ..QDpmConfig::default()
            },
            adaptive: crate::AdaptiveConfig::default(),
        }
    }
}

/// Runs the Fig. 2 experiment: Q-DPM vs the model-based adaptive pipeline
/// on a piecewise-stationary workload with marked switch points.
///
/// # Errors
///
/// Propagates construction and solver errors.
pub fn run_rapid_response(
    power: &PowerModel,
    service: &ServiceModel,
    params: &RapidResponseParams,
) -> Result<RapidResponseReport, SimError> {
    let mk_workload = || -> Result<PiecewiseStationary, SimError> {
        let segments = params
            .segments
            .iter()
            .map(|&(d, p)| Ok(Segment::new(d, WorkloadSpec::bernoulli(p)?)))
            .collect::<Result<Vec<_>, SimError>>()?;
        Ok(PiecewiseStationary::new(segments)?)
    };
    let switch_points = mk_workload()?.switch_points();
    let horizon: Step = params.segments.iter().map(|&(d, _)| d).sum();
    let sim_cfg = SimConfig {
        queue_cap: params.queue_cap,
        weights: params.weights,
        seed: params.seed,
        expose_sr_mode: false,
        ..SimConfig::default()
    };

    // Q-DPM.
    let mut agent_cfg = params.agent.clone();
    agent_cfg.queue_cap = params.queue_cap;
    agent_cfg.weights = params.weights;
    let agent = QDpmAgent::new(power, agent_cfg)?;
    let mut sim = Simulator::new(
        power.clone(),
        *service,
        Box::new(mk_workload()?),
        Box::new(agent),
        sim_cfg.clone(),
    )?;
    sim.attach_recorder(params.window);
    sim.run(horizon);
    let qdpm = sim.take_series();

    // Model-based adaptive pipeline.
    let mut adaptive_cfg = params.adaptive.clone();
    adaptive_cfg.queue_cap = params.queue_cap;
    adaptive_cfg.weights = params.weights;
    adaptive_cfg.initial_rate = params.segments[0].1;
    let adaptive = crate::ModelBasedAdaptive::new(power, service, adaptive_cfg)?;
    let mut sim_mb = Simulator::new(
        power.clone(),
        *service,
        Box::new(mk_workload()?),
        Box::new(adaptive),
        sim_cfg.clone(),
    )?;
    sim_mb.attach_recorder(params.window);
    sim_mb.run(horizon);
    let model_based = sim_mb.take_series();
    // Recover diagnostics (the PM is type-erased; re-deriving them cleanly
    // would need downcasting — count resolves via a fresh shadow run is
    // overkill, so we report the alarm-capable configuration's count from
    // a dedicated probe below).
    let model_based_resolves = {
        let mut adaptive_cfg = params.adaptive.clone();
        adaptive_cfg.queue_cap = params.queue_cap;
        adaptive_cfg.weights = params.weights;
        adaptive_cfg.initial_rate = params.segments[0].1;
        let mut probe = crate::ModelBasedAdaptive::new(power, service, adaptive_cfg)?;
        let mut workload = mk_workload()?;
        use qdpm_workload::RequestGenerator;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(params.seed);
        for _ in 0..horizon {
            let arrivals = workload.next_arrivals(&mut rng);
            probe.observe(
                &qdpm_core::StepOutcome {
                    energy: 0.0,
                    queue_len: 0,
                    dropped: 0,
                    completed: 0,
                    arrivals,
                    deadline_misses: 0,
                },
                &qdpm_core::Observation {
                    device_mode: qdpm_device::DeviceMode::Operational(power.serving_state()),
                    queue_len: 0,
                    idle_slices: 0,
                    sr_mode_hint: None,
                },
            );
        }
        probe.n_resolves
    };

    // Clairvoyant per-segment optimum: solve each segment offline, switch
    // policies exactly at the switch points.
    let mut clairvoyant_points: Vec<WindowPoint> = Vec::new();
    {
        let mut sims: Vec<Simulator> = Vec::new();
        // One simulator driven straight through, swapping controllers is not
        // supported by the engine (PM is owned); instead simulate each
        // segment's optimal controller over the full horizon piecewise:
        // run segment-by-segment, carrying device/queue state via a single
        // simulator per segment boundary is complex — approximate by
        // simulating each segment independently (fresh state), which is
        // accurate away from the boundary slices.
        let mut offset: Step = 0;
        for &(duration, p) in &params.segments {
            let spec = WorkloadSpec::bernoulli(p)?;
            let arrivals = spec.markov_model().expect("bernoulli is markovian");
            let model = build_dpm_mdp(
                power,
                service,
                &arrivals,
                params.queue_cap,
                params.weights.drop_penalty,
            )?;
            let cost = model.mdp.combined_cost(
                CostWeights::new(params.weights.energy, params.weights.perf)
                    .map_err(SimError::Mdp)?,
            );
            let sol = solvers::relative_value_iteration(&model.mdp, &cost, 1e-9, 500_000)
                .map_err(SimError::Mdp)?;
            let controller =
                MdpPolicyController::deterministic(model.space.clone(), sol.policy.clone())
                    .with_name("clairvoyant");
            let mut s = Simulator::new(
                power.clone(),
                *service,
                spec.build(),
                Box::new(controller),
                SimConfig {
                    seed: params.seed.wrapping_add(offset),
                    ..sim_cfg.clone()
                },
            )?;
            s.attach_recorder(params.window);
            s.run(duration);
            for mut p in s.take_series() {
                p.end += offset;
                clairvoyant_points.push(p);
            }
            offset += duration;
            sims.clear();
        }
    }

    Ok(RapidResponseReport {
        qdpm,
        model_based,
        clairvoyant: clairvoyant_points,
        switch_points,
        model_based_resolves,
    })
}

/// Result of the F5 continuous-drift experiment.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// Windowed series of Q-DPM.
    pub qdpm: Vec<WindowPoint>,
    /// Windowed series of the model-based adaptive pipeline.
    pub model_based: Vec<WindowPoint>,
    /// Per-window clairvoyant bound: the optimal gain recomputed for the
    /// workload's true instantaneous rate at each window's midpoint.
    pub clairvoyant_gain: Vec<f64>,
    /// Detector alarms / re-optimizations performed by the pipeline.
    pub model_based_resolves: u64,
}

/// Parameters of the F5 continuous-drift experiment.
#[derive(Debug, Clone)]
pub struct DriftParams {
    /// Mean arrival probability of the sinusoid.
    pub base: f64,
    /// Swing around the mean.
    pub amplitude: f64,
    /// Slices per drift cycle.
    pub period: Step,
    /// Total horizon in slices.
    pub horizon: Step,
    /// Window width of the reported series.
    pub window: Step,
    /// Queue capacity.
    pub queue_cap: usize,
    /// Reward/cost weights.
    pub weights: RewardWeights,
    /// Master seed.
    pub seed: u64,
    /// Q-DPM configuration.
    pub agent: QDpmConfig,
    /// Model-based pipeline configuration.
    pub adaptive: crate::AdaptiveConfig,
}

impl Default for DriftParams {
    fn default() -> Self {
        DriftParams {
            base: 0.15,
            amplitude: 0.13,
            period: 40_000,
            horizon: 240_000,
            window: 2_000,
            queue_cap: 8,
            weights: RewardWeights::default(),
            seed: 23,
            agent: QDpmConfig {
                exploration: qdpm_core::Exploration::EpsilonGreedy { epsilon: 0.02 },
                ..QDpmConfig::default()
            },
            adaptive: crate::AdaptiveConfig::default(),
        }
    }
}

/// Runs the F5 experiment: continuously drifting arrival rate ("in most
/// real world systems parameters are undertaking continuous varying").
/// Q-DPM tracks by per-slice adaptation; the model-based pipeline's
/// detect -> estimate -> re-solve loop is permanently behind the drift.
///
/// # Errors
///
/// Propagates construction and solver errors.
pub fn run_drift(
    power: &PowerModel,
    service: &ServiceModel,
    params: &DriftParams,
) -> Result<DriftReport, SimError> {
    let spec = WorkloadSpec::Sinusoidal {
        base: params.base,
        amplitude: params.amplitude,
        period: params.period,
    };
    let sim_cfg = SimConfig {
        queue_cap: params.queue_cap,
        weights: params.weights,
        seed: params.seed,
        expose_sr_mode: false,
        ..SimConfig::default()
    };

    // Q-DPM.
    let mut agent_cfg = params.agent.clone();
    agent_cfg.queue_cap = params.queue_cap;
    agent_cfg.weights = params.weights;
    let agent = QDpmAgent::new(power, agent_cfg)?;
    let mut sim = Simulator::new(
        power.clone(),
        *service,
        spec.build(),
        Box::new(agent),
        sim_cfg.clone(),
    )?;
    sim.attach_recorder(params.window);
    sim.run(params.horizon);
    let qdpm = sim.take_series();

    // Model-based pipeline.
    let mut adaptive_cfg = params.adaptive.clone();
    adaptive_cfg.queue_cap = params.queue_cap;
    adaptive_cfg.weights = params.weights;
    adaptive_cfg.initial_rate = params.base;
    let adaptive = crate::ModelBasedAdaptive::new(power, service, adaptive_cfg.clone())?;
    let mut sim_mb = Simulator::new(
        power.clone(),
        *service,
        spec.build(),
        Box::new(adaptive),
        sim_cfg,
    )?;
    sim_mb.attach_recorder(params.window);
    sim_mb.run(params.horizon);
    let model_based = sim_mb.take_series();

    // Re-solve count via an offline probe of the same pipeline.
    let model_based_resolves = {
        let mut probe = crate::ModelBasedAdaptive::new(power, service, adaptive_cfg)?;
        let mut workload = spec.build();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(params.seed);
        for _ in 0..params.horizon {
            let arrivals = workload.next_arrivals(&mut rng);
            probe.observe(
                &qdpm_core::StepOutcome {
                    energy: 0.0,
                    queue_len: 0,
                    dropped: 0,
                    completed: 0,
                    arrivals,
                    deadline_misses: 0,
                },
                &qdpm_core::Observation {
                    device_mode: qdpm_device::DeviceMode::Operational(power.serving_state()),
                    queue_len: 0,
                    idle_slices: 0,
                    sr_mode_hint: None,
                },
            );
        }
        probe.n_resolves
    };

    // Per-window clairvoyant gain at the window-midpoint instantaneous rate.
    let mut clairvoyant_gain = Vec::with_capacity(qdpm.len());
    for p in &qdpm {
        let mid = p.end.saturating_sub(params.window / 2) as f64;
        let phase = 2.0 * std::f64::consts::PI * mid / params.period as f64;
        let rate = (params.base + params.amplitude * phase.sin()).clamp(0.0, 1.0);
        clairvoyant_gain.push(optimal_gain(
            power,
            service,
            rate,
            params.queue_cap,
            &params.weights,
        )?);
    }

    Ok(DriftReport {
        qdpm,
        model_based,
        clairvoyant_gain,
        model_based_resolves,
    })
}

/// One row of the T4 robustness sweep.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Device preset name.
    pub device: String,
    /// Workload label of the cell.
    pub workload: String,
    /// Mean arrival rate of the workload (`NaN` when not analytically
    /// defined).
    pub arrival_p: f64,
    /// Service completion probability (`NaN` for non-geometric services).
    pub service_p: f64,
    /// Analytic optimal average cost (RVI gain); `NaN` when the workload
    /// exports no Markovian reference model.
    pub optimal_gain: f64,
    /// Q-DPM measured average cost over the evaluation stretch.
    pub qdpm_cost: f64,
    /// Ratio `qdpm_cost / optimal_gain` (1.0 = optimal). `NaN` is the
    /// documented sentinel for a missing or degenerate (non-positive)
    /// reference gain — see [`ratio_to_gain`]; aggregate with
    /// [`sweep_ratio_summary`], which skips it.
    pub ratio: f64,
    /// Q-DPM energy reduction vs always-on over the evaluation stretch.
    pub energy_reduction: f64,
    /// Q-DPM mean waiting time of completed requests.
    pub mean_wait: f64,
    /// The cell's derived seed (reproducibility record).
    pub seed: u64,
}

/// Cost ratio `cost / gain`, guarded: returns the `NaN` sentinel when
/// `gain` is non-finite or non-positive (a degenerate model whose optimal
/// cost is zero, or a non-Markovian workload with no reference at all)
/// instead of dividing. Callers aggregating ratios must skip non-finite
/// values; [`sweep_ratio_summary`] does.
#[must_use]
pub fn ratio_to_gain(cost: f64, gain: f64) -> f64 {
    if gain.is_finite() && gain > 0.0 {
        cost / gain
    } else {
        f64::NAN
    }
}

/// Mean ratio, worst ratio and the count of cells with a *finite* ratio
/// (cells carrying the `NaN` no-reference sentinel are skipped rather than
/// silently poisoning the aggregate).
#[must_use]
pub fn sweep_ratio_summary(rows: &[SweepRow]) -> (f64, f64, usize) {
    let valid: Vec<f64> = rows
        .iter()
        .map(|r| r.ratio)
        .filter(|r| r.is_finite())
        .collect();
    if valid.is_empty() {
        return (f64::NAN, f64::NAN, 0);
    }
    let mean = valid.iter().sum::<f64>() / valid.len() as f64;
    let worst = valid.iter().cloned().fold(f64::MIN, f64::max);
    (mean, worst, valid.len())
}

/// Trains and evaluates Q-DPM on one scenario cell and compares it to the
/// cell's analytic reference (when one exists). This is the unit of work
/// of the parallel grid runner; it depends only on the cell's own content,
/// which is what makes parallel output byte-identical to serial.
///
/// # Errors
///
/// Propagates construction and solver errors.
pub fn run_sweep_cell(cell: &ScenarioCell) -> Result<SweepRow, SimError> {
    let reference =
        cell.kind
            .reference_gain(&cell.power, &cell.service, cell.queue_cap, &cell.weights)?;
    evaluate_cell(cell, reference.unwrap_or(f64::NAN))
}

/// [`run_sweep_cell`] with the analytic reference gain already solved
/// (`NaN` = no reference): lets [`run_grid`] share one RVI solve across
/// replicates of the same scenario instead of re-solving per cell.
fn evaluate_cell(cell: &ScenarioCell, gain: f64) -> Result<SweepRow, SimError> {
    // Exploration schedule scaled to the training budget: decay reaches
    // the floor at ~70% of training, leaving a near-greedy
    // evaluation-ready policy.
    let eps0: f64 = 0.4;
    let min_epsilon = 0.005;
    let decay = (min_epsilon / eps0).powf(1.0 / (0.7 * cell.train as f64).max(1.0));
    let agent = QDpmAgent::new(
        &cell.power,
        QDpmConfig {
            queue_cap: cell.queue_cap,
            weights: cell.weights,
            exploration: qdpm_core::Exploration::DecayingEpsilon {
                epsilon0: eps0,
                decay,
                min_epsilon,
            },
            ..QDpmConfig::default()
        },
    )?;
    let mut sim = Simulator::new(
        cell.power.clone(),
        cell.service,
        cell.kind.build()?,
        Box::new(agent),
        SimConfig {
            seed: cell.seed,
            weights: cell.weights,
            queue_cap: cell.queue_cap,
            mode: cell.engine_mode,
            ..SimConfig::default()
        },
    )?;
    sim.run(cell.train);
    let eval = sim.run(cell.evaluate);
    let p_on = cell.power.state(cell.power.highest_power_state()).power;
    Ok(SweepRow {
        device: cell.device.clone(),
        workload: cell.workload.clone(),
        arrival_p: cell.kind.mean_rate().unwrap_or(f64::NAN),
        service_p: cell.service.completion_probability().unwrap_or(f64::NAN),
        optimal_gain: gain,
        qdpm_cost: eval.avg_cost(),
        ratio: ratio_to_gain(eval.avg_cost(), gain),
        energy_reduction: eval.energy_reduction_vs(p_on),
        mean_wait: eval.mean_wait(),
        seed: cell.seed,
    })
}

/// Whether two cells describe the same scenario up to the seed — i.e.
/// replicates, which share one analytic reference gain.
fn same_scenario(a: &ScenarioCell, b: &ScenarioCell) -> bool {
    a.device == b.device
        && a.workload == b.workload
        && a.kind == b.kind
        && a.service == b.service
        && a.queue_cap == b.queue_cap
        && a.weights == b.weights
}

/// Runs every cell of a [`ScenarioGrid`] on `threads` workers and returns
/// the rows in cell order — byte-identical to the serial (`threads == 1`)
/// path at any worker count.
///
/// The analytic reference gain depends on everything in a cell *except*
/// its seed, so it is solved once per scenario and shared across that
/// scenario's replicates (RVI is deterministic; sharing cannot change any
/// row) instead of re-solving per cell.
///
/// # Errors
///
/// Propagates the first cell error in cell order.
pub fn run_grid(grid: &ScenarioGrid, threads: usize) -> Result<Vec<SweepRow>, SimError> {
    let cells = grid.cells();
    // Replicates are innermost and contiguous in `ScenarioGrid::cartesian`,
    // so a cell's scenario representative sits `replicate` slots back;
    // `same_scenario` re-checks rather than trusting the layout.
    let base_of: Vec<usize> = cells
        .iter()
        .enumerate()
        .map(|(i, cell)| {
            let base = i.saturating_sub(cell.replicate);
            if same_scenario(cell, &cells[base]) {
                base
            } else {
                i
            }
        })
        .collect();
    let bases: Vec<usize> = base_of
        .iter()
        .enumerate()
        .filter(|&(i, &base)| i == base)
        .map(|(i, _)| i)
        .collect();
    let solved = parallel::run_indexed(&bases, threads, |_, &base| {
        let cell = &cells[base];
        cell.kind
            .reference_gain(&cell.power, &cell.service, cell.queue_cap, &cell.weights)
    });
    let mut gain_of_base = vec![f64::NAN; cells.len()];
    for (&base, reference) in bases.iter().zip(solved) {
        gain_of_base[base] = reference?.unwrap_or(f64::NAN);
    }
    parallel::run_indexed(cells, threads, |i, cell| {
        evaluate_cell(cell, gain_of_base[base_of[i]])
    })
    .into_iter()
    .collect()
}

/// Builds the classic T4 grid — devices × Bernoulli arrival rates ×
/// geometric service rates, one replicate — with per-cell derived seeds
/// (`parallel::derive_cell_seed(seed, index)`; every cell draws an
/// independent arrival stream instead of sharing the master seed).
///
/// # Errors
///
/// Propagates workload/service validation errors.
pub fn bernoulli_sweep_grid(
    devices: &[(String, PowerModel)],
    arrival_ps: &[f64],
    service_ps: &[f64],
    train: Step,
    evaluate: Step,
    seed: u64,
) -> Result<ScenarioGrid, SimError> {
    let workloads = arrival_ps
        .iter()
        .map(|&p| {
            Ok((
                format!("bernoulli(p={p})"),
                ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(p)?),
            ))
        })
        .collect::<Result<Vec<_>, SimError>>()?;
    let services = service_ps
        .iter()
        .map(|&sp| Ok(ServiceModel::geometric(sp)?))
        .collect::<Result<Vec<_>, SimError>>()?;
    Ok(ScenarioGrid::cartesian(
        devices,
        &workloads,
        &services,
        1,
        &GridParams {
            queue_cap: 8,
            weights: RewardWeights::default(),
            train,
            evaluate,
            master_seed: seed,
            ..GridParams::default()
        },
    ))
}

/// Runs the "many cases" sweep (T4): Q-DPM trained then evaluated on a grid
/// of devices and workload/service rates, each compared to its analytic
/// optimum. Serial entry point; see [`run_sweep_threaded`].
///
/// # Errors
///
/// Propagates construction and solver errors.
pub fn run_sweep(
    devices: &[(String, PowerModel)],
    arrival_ps: &[f64],
    service_ps: &[f64],
    train: Step,
    evaluate: Step,
    seed: u64,
) -> Result<Vec<SweepRow>, SimError> {
    run_sweep_threaded(devices, arrival_ps, service_ps, train, evaluate, seed, 1)
}

/// [`run_sweep`] on `threads` workers — same rows, byte-identical, at any
/// worker count.
///
/// # Errors
///
/// Propagates construction and solver errors.
pub fn run_sweep_threaded(
    devices: &[(String, PowerModel)],
    arrival_ps: &[f64],
    service_ps: &[f64],
    train: Step,
    evaluate: Step,
    seed: u64,
    threads: usize,
) -> Result<Vec<SweepRow>, SimError> {
    let grid = bernoulli_sweep_grid(devices, arrival_ps, service_ps, train, evaluate, seed)?;
    run_grid(&grid, threads)
}

/// Formats sweep rows as the canonical T4 TSV body (header + one row per
/// cell). Shared by the `table_sweep` bin and the determinism suite so
/// "byte-identical TSV" is checked against the exact production format.
#[must_use]
pub fn sweep_rows_to_tsv(rows: &[SweepRow]) -> String {
    let mut out = String::from(
        "device\tworkload\tarrival_p\tservice_p\toptimal_gain\tqdpm_cost\tratio\tenergy_reduction\tmean_wait\tseed\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{}\t{}\t{:.4}\t{:.2}\t{:.5}\t{:.5}\t{:.3}\t{:.3}\t{:.2}\t{}\n",
            r.device,
            r.workload,
            r.arrival_p,
            r.service_p,
            r.optimal_gain,
            r.qdpm_cost,
            r.ratio,
            r.energy_reduction,
            r.mean_wait,
            r.seed
        ));
    }
    out
}

/// Analytic optimal average cost for a Bernoulli workload (helper shared by
/// bins and tests).
///
/// # Errors
///
/// Propagates construction and solver errors.
pub fn optimal_gain(
    power: &PowerModel,
    service: &ServiceModel,
    arrival_p: f64,
    queue_cap: usize,
    weights: &RewardWeights,
) -> Result<f64, SimError> {
    let arrivals = qdpm_workload::MarkovArrivalModel::bernoulli(arrival_p)?;
    let model = build_dpm_mdp(power, service, &arrivals, queue_cap, weights.drop_penalty)?;
    let cost = model
        .mdp
        .combined_cost(CostWeights::new(weights.energy, weights.perf).map_err(SimError::Mdp)?);
    let sol = solvers::relative_value_iteration(&model.mdp, &cost, 1e-9, 500_000)
        .map_err(SimError::Mdp)?;
    Ok(sol.gain)
}

/// Formats a windowed series as TSV rows `end<TAB>energy<TAB>cost<TAB>
/// reduction<TAB>queue`.
#[must_use]
pub fn series_to_tsv(points: &[WindowPoint]) -> String {
    let mut out =
        String::from("end\tenergy_per_slice\tcost_per_slice\tenergy_reduction\tavg_queue\n");
    for p in points {
        out.push_str(&format!(
            "{}\t{:.6}\t{:.6}\t{:.6}\t{:.4}\n",
            p.end, p.energy_per_slice, p.cost_per_slice, p.energy_reduction, p.avg_queue
        ));
    }
    out
}

/// Mean cost-per-slice of the last `k` windows of a series (convergence
/// summary). `k == 0` means the whole series (previously this divided
/// 0 by 0 and returned `NaN`); an empty series still returns `NaN`.
#[must_use]
pub fn tail_mean_cost(points: &[WindowPoint], k: usize) -> f64 {
    if points.is_empty() {
        return f64::NAN;
    }
    let k = if k == 0 { points.len() } else { k };
    let tail = &points[points.len().saturating_sub(k)..];
    tail.iter().map(|p| p.cost_per_slice).sum::<f64>() / tail.len() as f64
}

/// One point of the DVFS energy / deadline-miss frontier (T-DVFS): a
/// policy evaluated at one knob setting on the joint sleep-state ×
/// operating-point device with a deadline-tagged workload.
#[derive(Debug, Clone)]
pub struct FrontierPoint {
    /// Which policy produced the point (`"q-dpm"` or `"mdp-oracle"`).
    pub policy: &'static str,
    /// The trade-off knob: the agent's per-miss reward penalty, or the
    /// oracle's MDP performance weight.
    pub knob: f64,
    /// Mean energy per slice over the evaluation stretch.
    pub energy_per_slice: f64,
    /// Deadline-miss rate over completions of the evaluation stretch.
    pub miss_rate: f64,
    /// Mean waiting time of completed requests, in slices.
    pub mean_wait: f64,
    /// Deadlines met during evaluation.
    pub met: u64,
    /// Deadlines missed during evaluation.
    pub missed: u64,
}

/// Parameters of the T-DVFS frontier experiment.
#[derive(Debug, Clone)]
pub struct FrontierParams {
    /// Stationary arrival probability (Bernoulli requester).
    pub arrival_p: f64,
    /// Per-request relative-deadline law.
    pub deadline: qdpm_workload::DeadlineSpec,
    /// Agent training slices before its evaluation stretch.
    pub train: Step,
    /// Evaluation slices (both policies measure over this stretch).
    pub evaluate: Step,
    /// Oracle warm-up slices before its evaluation stretch (the solved
    /// policy is stationary; this only flushes the empty-system start).
    pub warmup: Step,
    /// Queue capacity.
    pub queue_cap: usize,
    /// Base reward/cost weights; the agent sweep overrides only
    /// `deadline_penalty`, the oracle sweep only the MDP `perf` weight.
    pub weights: RewardWeights,
    /// Master seed (shared: both policies face identical arrivals).
    pub seed: u64,
    /// Agent sweep: per-miss deadline penalties, one point each.
    pub penalties: Vec<f64>,
    /// Oracle sweep: MDP performance weights, one point each.
    pub oracle_perf_weights: Vec<f64>,
}

impl Default for FrontierParams {
    fn default() -> Self {
        FrontierParams {
            arrival_p: 0.15,
            deadline: qdpm_workload::DeadlineSpec::uniform(3, 12)
                .expect("default deadline range is valid"),
            train: 600_000,
            evaluate: 150_000,
            warmup: 20_000,
            queue_cap: 8,
            weights: RewardWeights::default(),
            seed: 11,
            // The per-miss penalty enters the reward scaled by the perf
            // weight (0.1 by default), so the sweep spans decades to
            // actually trade energy against misses. It stops at 64: the
            // miss penalty fires at *completion* time, so a far larger
            // penalty teaches the agent the degenerate lesson that
            // requests it never serves are never penalized.
            penalties: vec![0.0, 2.0, 8.0, 16.0, 32.0, 64.0],
            oracle_perf_weights: vec![0.02, 0.05, 0.1, 0.3, 1.0, 3.0],
        }
    }
}

/// Builds a [`FrontierPoint`] from one evaluated stretch: energy and
/// wait from the stretch's [`crate::RunStats`], the miss rate from the
/// deadline-ledger delta across the stretch.
fn frontier_point(
    policy: &'static str,
    knob: f64,
    eval: &crate::RunStats,
    before: &qdpm_workload::DeadlineStats,
    after: &qdpm_workload::DeadlineStats,
) -> FrontierPoint {
    let met = after.met - before.met;
    let missed = after.missed - before.missed;
    let done = met + missed;
    FrontierPoint {
        policy,
        knob,
        energy_per_slice: eval.total_energy / eval.steps as f64,
        miss_rate: if done == 0 {
            0.0
        } else {
            missed as f64 / done as f64
        },
        mean_wait: eval.mean_wait(),
        met,
        missed,
    }
}

/// Trains a deadline-penalized Q-DPM agent on the joint DVFS device and
/// evaluates its energy / miss-rate point.
fn frontier_agent_point(
    power: &PowerModel,
    service: &ServiceModel,
    params: &FrontierParams,
    penalty: f64,
) -> Result<FrontierPoint, SimError> {
    let weights = RewardWeights {
        deadline_penalty: penalty,
        ..params.weights
    };
    // Exploration schedule as in the T4 sweep: decay to the floor at
    // ~70% of training, leaving a near-greedy evaluation-ready policy.
    let eps0: f64 = 0.4;
    let min_epsilon = 0.005;
    let decay = (min_epsilon / eps0).powf(1.0 / (0.7 * params.train as f64).max(1.0));
    let agent = QDpmAgent::new(
        power,
        QDpmConfig {
            queue_cap: params.queue_cap,
            weights,
            exploration: qdpm_core::Exploration::DecayingEpsilon {
                epsilon0: eps0,
                decay,
                min_epsilon,
            },
            ..QDpmConfig::default()
        },
    )?;
    let mut sim = Simulator::new(
        power.clone(),
        *service,
        WorkloadSpec::bernoulli(params.arrival_p)?.build(),
        Box::new(agent),
        SimConfig {
            seed: params.seed,
            weights,
            queue_cap: params.queue_cap,
            deadline: Some(params.deadline),
            ..SimConfig::default()
        },
    )?;
    sim.run(params.train);
    let before = *sim.deadline_stats();
    let eval = sim.run(params.evaluate);
    let after = *sim.deadline_stats();
    Ok(frontier_point("q-dpm", penalty, &eval, &before, &after))
}

/// Solves the joint (sleep-state × operating-point) MDP at one
/// performance weight and evaluates the resulting deterministic policy's
/// energy / miss-rate point on the same deadline-tagged workload.
///
/// The oracle is *deadline-blind but queue-aware*: deadlines are not
/// part of the MDP state, so its frontier is traced by sweeping the
/// latency (performance) weight — the model-known upper envelope the
/// learning agent is compared against.
fn frontier_oracle_point(
    power: &PowerModel,
    service: &ServiceModel,
    params: &FrontierParams,
    perf_weight: f64,
) -> Result<FrontierPoint, SimError> {
    let arrivals = qdpm_workload::MarkovArrivalModel::bernoulli(params.arrival_p)?;
    let model = build_dpm_mdp(
        power,
        service,
        &arrivals,
        params.queue_cap,
        params.weights.drop_penalty,
    )?;
    let cost = model.mdp.combined_cost(
        CostWeights::new(params.weights.energy, perf_weight).map_err(SimError::Mdp)?,
    );
    let sol = solvers::relative_value_iteration(&model.mdp, &cost, 1e-9, 500_000)
        .map_err(SimError::Mdp)?;
    let controller = MdpPolicyController::deterministic(model.space.clone(), sol.policy.clone())
        .with_name("dvfs-oracle");
    let mut sim = Simulator::new(
        power.clone(),
        *service,
        WorkloadSpec::bernoulli(params.arrival_p)?.build(),
        Box::new(controller),
        SimConfig {
            seed: params.seed,
            weights: params.weights,
            queue_cap: params.queue_cap,
            deadline: Some(params.deadline),
            ..SimConfig::default()
        },
    )?;
    sim.run(params.warmup);
    let before = *sim.deadline_stats();
    let eval = sim.run(params.evaluate);
    let after = *sim.deadline_stats();
    Ok(frontier_point(
        "mdp-oracle",
        perf_weight,
        &eval,
        &before,
        &after,
    ))
}

/// Runs the T-DVFS frontier: the deadline-penalized Q-DPM agent swept
/// over `penalties` against the solved joint-MDP oracle swept over
/// `oracle_perf_weights`, all on the identical deadline-tagged arrival
/// stream. Points come back agent-first, each sweep in knob order.
/// Serial entry point; see [`run_dvfs_frontier_threaded`].
///
/// # Errors
///
/// Propagates construction and solver errors.
pub fn run_dvfs_frontier(
    power: &PowerModel,
    service: &ServiceModel,
    params: &FrontierParams,
) -> Result<Vec<FrontierPoint>, SimError> {
    run_dvfs_frontier_threaded(power, service, params, 1)
}

/// [`run_dvfs_frontier`] on `threads` workers — every point is an
/// independent simulation, so the rows are identical at any worker
/// count (point order is preserved).
///
/// # Errors
///
/// Propagates construction and solver errors.
pub fn run_dvfs_frontier_threaded(
    power: &PowerModel,
    service: &ServiceModel,
    params: &FrontierParams,
    threads: usize,
) -> Result<Vec<FrontierPoint>, SimError> {
    #[derive(Clone, Copy)]
    enum Job {
        Agent(f64),
        Oracle(f64),
    }
    let jobs: Vec<Job> = params
        .penalties
        .iter()
        .map(|&p| Job::Agent(p))
        .chain(params.oracle_perf_weights.iter().map(|&w| Job::Oracle(w)))
        .collect();
    parallel::run_indexed(&jobs, threads, |_, job| match *job {
        Job::Agent(p) => frontier_agent_point(power, service, params, p),
        Job::Oracle(w) => frontier_oracle_point(power, service, params, w),
    })
    .into_iter()
    .collect()
}

/// Formats frontier points as the canonical T-DVFS TSV body (header +
/// one row per point). Shared by the `frontier_dvfs` bin and the
/// golden-master suite.
#[must_use]
pub fn frontier_rows_to_tsv(rows: &[FrontierPoint]) -> String {
    let mut out =
        String::from("policy\tknob\tenergy_per_slice\tmiss_rate\tmean_wait\tmet\tmissed\n");
    for r in rows {
        out.push_str(&format!(
            "{}\t{:.3}\t{:.5}\t{:.4}\t{:.2}\t{}\t{}\n",
            r.policy, r.knob, r.energy_per_slice, r.miss_rate, r.mean_wait, r.met, r.missed
        ));
    }
    out
}

/// The agent-vs-oracle gap behind the frontier's headline claim: for
/// each agent point, the cheapest oracle point with a miss rate no worse
/// than the agent's (within an absolute tolerance of 0.02) is its
/// matched reference, and the gap is the agent/oracle energy ratio.
/// Returns `(mean_gap, worst_gap, matched_points)`; agent points whose
/// miss rate undercuts every oracle point are unmatched and excluded.
/// Points that completed nothing (a starved sweep endpoint whose miss
/// rate is vacuous) are excluded from both sides of the match.
#[must_use]
pub fn frontier_gap_summary(rows: &[FrontierPoint]) -> (f64, f64, usize) {
    const MISS_TOL: f64 = 0.02;
    let mut gaps: Vec<f64> = Vec::new();
    for agent in rows
        .iter()
        .filter(|r| r.policy == "q-dpm" && r.met + r.missed > 0)
    {
        let reference = rows
            .iter()
            .filter(|r| {
                r.policy == "mdp-oracle"
                    && r.met + r.missed > 0
                    && r.miss_rate <= agent.miss_rate + MISS_TOL
            })
            .map(|r| r.energy_per_slice)
            .fold(f64::INFINITY, f64::min);
        if reference.is_finite() && reference > 0.0 {
            gaps.push(agent.energy_per_slice / reference);
        }
    }
    if gaps.is_empty() {
        return (f64::NAN, f64::NAN, 0);
    }
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let worst = gaps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (mean, worst, gaps.len())
}

#[allow(unused_imports)]
use qdpm_core::StepOutcome as _StepOutcomeForDocs;

#[cfg(test)]
mod tests {
    use super::*;
    use qdpm_device::presets;

    /// A small, fast Fig. 1 shape check: after training, Q-DPM's tail cost
    /// is within 35% of the analytic optimum and clearly better than
    /// always-on.
    #[test]
    fn convergence_shape_small() {
        let power = presets::three_state_generic();
        let service = presets::default_service();
        let mut params = ConvergenceParams {
            horizon: 120_000,
            window: 2_000,
            ..ConvergenceParams::default()
        };
        // Short horizon: decay exploration faster than the 200k-slice
        // default schedule so the tail windows are near-greedy.
        params.agent.exploration = qdpm_core::Exploration::DecayingEpsilon {
            epsilon0: 0.3,
            decay: 0.9999,
            min_epsilon: 0.005,
        };
        let report = run_convergence(&power, &service, &params).unwrap();
        assert!(report.optimal_gain > 0.0);
        assert!(report.always_on_gain > report.optimal_gain);
        let qdpm_tail = tail_mean_cost(&report.qdpm, 5);
        assert!(
            qdpm_tail < report.always_on_gain,
            "q-dpm tail {qdpm_tail} should beat always-on {}",
            report.always_on_gain
        );
        assert!(
            qdpm_tail / report.optimal_gain < 1.6,
            "q-dpm tail {qdpm_tail} too far from optimum {}",
            report.optimal_gain
        );
        // The optimal controller's measured cost must track its gain.
        let opt_tail = tail_mean_cost(&report.optimal, 10);
        assert!(
            (opt_tail - report.optimal_gain).abs() / report.optimal_gain < 0.15,
            "measured optimal {opt_tail} vs analytic {}",
            report.optimal_gain
        );
    }

    #[test]
    fn multi_seed_convergence_is_tight() {
        // Short horizons leave slow seeds mid-transient; 150k slices with a
        // matched decay schedule lets every seed settle.
        let power = presets::three_state_generic();
        let service = presets::default_service();
        let mut params = ConvergenceParams {
            horizon: 150_000,
            window: 2_000,
            ..ConvergenceParams::default()
        };
        params.agent.exploration = qdpm_core::Exploration::DecayingEpsilon {
            epsilon0: 0.3,
            decay: 0.99995,
            min_epsilon: 0.005,
        };
        let ratios =
            convergence_ratios_over_seeds(&power, &service, &params, &[1, 2, 3], 10).unwrap();
        let (mean, sd) = mean_and_sd(&ratios);
        assert!(mean < 1.5, "mean ratio {mean} (per-seed {ratios:?})");
        assert!(
            sd < 0.4,
            "seed dispersion {sd} too wide (per-seed {ratios:?})"
        );
    }

    #[test]
    fn mean_and_sd_edge_cases() {
        assert!(mean_and_sd(&[]).0.is_nan());
        let (m, s) = mean_and_sd(&[2.0]);
        assert_eq!((m, s), (2.0, 0.0));
        let (m, s) = mean_and_sd(&[1.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn rapid_response_smoke() {
        let power = presets::three_state_generic();
        let service = presets::default_service();
        let params = RapidResponseParams {
            segments: vec![(8_000, 0.02), (8_000, 0.3)],
            window: 1_000,
            ..RapidResponseParams::default()
        };
        let report = run_rapid_response(&power, &service, &params).unwrap();
        assert_eq!(report.switch_points, vec![8_000]);
        assert_eq!(report.qdpm.len(), 16);
        assert_eq!(report.model_based.len(), 16);
        assert!(!report.clairvoyant.is_empty());
    }

    #[test]
    fn sweep_rows_cover_grid() {
        let devices = vec![("three-state".to_string(), presets::three_state_generic())];
        let rows = run_sweep(&devices, &[0.02, 0.2], &[0.6], 20_000, 5_000, 3).unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.optimal_gain > 0.0);
            assert!(row.qdpm_cost > 0.0);
            assert!(row.ratio.is_finite());
        }
        // The seeding bugfix: cells must not share the master seed — each
        // gets the pinned splitmix derivation of (master, cell index).
        assert_eq!(rows[0].seed, crate::parallel::derive_cell_seed(3, 0));
        assert_eq!(rows[1].seed, crate::parallel::derive_cell_seed(3, 1));
        assert_ne!(rows[0].seed, rows[1].seed);
    }

    #[test]
    fn run_grid_shared_reference_matches_per_cell_solves() {
        // `run_grid` solves the analytic reference once per scenario and
        // shares it across replicates; every row must still equal the
        // unshared `run_sweep_cell` path exactly.
        let devices = vec![("three-state".to_string(), presets::three_state_generic())];
        let workloads = vec![(
            "bern-0.1".to_string(),
            ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(0.1).unwrap()),
        )];
        let services = vec![qdpm_device::presets::default_service()];
        let grid = ScenarioGrid::cartesian(
            &devices,
            &workloads,
            &services,
            2,
            &GridParams {
                train: 3_000,
                evaluate: 1_000,
                master_seed: 9,
                ..GridParams::default()
            },
        );
        let shared = run_grid(&grid, 2).unwrap();
        let per_cell: Vec<SweepRow> = grid
            .cells()
            .iter()
            .map(|c| run_sweep_cell(c).unwrap())
            .collect();
        assert_eq!(sweep_rows_to_tsv(&shared), sweep_rows_to_tsv(&per_cell));
        // Replicates share the gain but not the seed.
        assert_eq!(shared[0].optimal_gain, shared[1].optimal_gain);
        assert_ne!(shared[0].seed, shared[1].seed);
    }

    #[test]
    fn tail_mean_cost_k_zero_is_full_series_mean() {
        let mk = |cost: f64| WindowPoint {
            end: 0,
            energy_per_slice: 0.0,
            cost_per_slice: cost,
            avg_queue: 0.0,
            dropped: 0,
            energy_reduction: 0.0,
        };
        let pts = vec![mk(1.0), mk(2.0), mk(6.0)];
        assert!((tail_mean_cost(&pts, 0) - 3.0).abs() < 1e-12);
        assert!((tail_mean_cost(&pts, 2) - 4.0).abs() < 1e-12);
        // `k` larger than the series is clamped to the whole series.
        assert!((tail_mean_cost(&pts, 10) - 3.0).abs() < 1e-12);
        assert!(tail_mean_cost(&[], 0).is_nan());
        assert!(tail_mean_cost(&[], 5).is_nan());
    }

    #[test]
    fn ratio_guard_sentinels() {
        assert!((ratio_to_gain(2.0, 4.0) - 0.5).abs() < 1e-12);
        assert!(ratio_to_gain(2.0, 0.0).is_nan());
        assert!(ratio_to_gain(2.0, -1.0).is_nan());
        assert!(ratio_to_gain(2.0, f64::NAN).is_nan());
    }

    #[test]
    fn sweep_summary_skips_nan_sentinels() {
        let mk = |ratio: f64| SweepRow {
            device: "d".into(),
            workload: "w".into(),
            arrival_p: 0.1,
            service_p: 0.6,
            optimal_gain: 1.0,
            qdpm_cost: ratio,
            ratio,
            energy_reduction: 0.0,
            mean_wait: 0.0,
            seed: 0,
        };
        let rows = vec![mk(1.0), mk(f64::NAN), mk(3.0)];
        let (mean, worst, n) = sweep_ratio_summary(&rows);
        assert!((mean - 2.0).abs() < 1e-12);
        assert!((worst - 3.0).abs() < 1e-12);
        assert_eq!(n, 2);
        let (mean, worst, n) = sweep_ratio_summary(&[mk(f64::NAN)]);
        assert!(mean.is_nan() && worst.is_nan());
        assert_eq!(n, 0);
    }

    #[test]
    fn tsv_formatting() {
        let pts = vec![WindowPoint {
            end: 100,
            energy_per_slice: 0.5,
            cost_per_slice: 0.6,
            avg_queue: 0.2,
            dropped: 0,
            energy_reduction: 0.5,
        }];
        let tsv = series_to_tsv(&pts);
        assert!(tsv.starts_with("end\t"));
        assert!(tsv.contains("100\t0.500000"));
    }
}
