//! Deterministic parallel experiment execution.
//!
//! Every evaluation in this repo — the T4 "many cases" sweep, multi-seed
//! convergence ratios, ablations — is a grid of independent cells, each
//! paying a full RVI solve plus a training run. This module provides:
//!
//! * [`run_indexed`] — a sharded runner: N workers under
//!   [`std::thread::scope`] pull cell indices from a shared atomic cursor
//!   and write results into per-index slots, so the output order (and
//!   therefore any TSV rendered from it) is *byte-identical at any thread
//!   count*, including the serial `threads == 1` path;
//! * [`derive_cell_seed`] — a SplitMix64-style hash of (master seed, cell
//!   index) giving every cell an independent random stream, mirroring how
//!   [`crate::SimConfig`] derives its per-stream RNGs;
//! * [`ScenarioCell`] / [`ScenarioGrid`] — the generalization of the old
//!   hardcoded Bernoulli triple-loop to arbitrary
//!   (device × workload kind × service × replicate) grids, including
//!   Markov-modulated and piecewise-stationary workloads.
//!
//! Determinism is the contract: a cell's result depends only on the cell's
//! own content (its derived seed included), never on which worker ran it
//! or in what order, so parallel and serial runs agree exactly.
//!
//! # Example
//!
//! ```
//! use qdpm_sim::parallel::run_indexed;
//!
//! let squares = run_indexed(&[1u64, 2, 3, 4], 2, |i, &x| (i as u64, x * x));
//! assert_eq!(squares, vec![(0, 1), (1, 4), (2, 9), (3, 16)]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use qdpm_core::RewardWeights;
use qdpm_device::{PowerModel, ServiceModel, Step};
use qdpm_mdp::{build_dpm_mdp, solvers, CostWeights};
use qdpm_workload::{PiecewiseStationary, RequestGenerator, Segment, WorkloadSpec};

use crate::{EngineMode, SimError};

/// Number of worker threads the host offers (`available_parallelism`,
/// falling back to 1 when undetectable).
#[must_use]
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Derives the independent seed of grid cell `index` from `master`.
///
/// SplitMix64 finalizer over `master + index * GOLDEN`, the same mixing
/// family `SeedableRng::seed_from_u64` uses to expand seeds — so per-cell
/// streams are as independent as the simulator's own per-stream RNGs, and
/// the derivation is pinned by a unit test to keep published results
/// reproducible.
#[must_use]
pub fn derive_cell_seed(master: u64, index: u64) -> u64 {
    qdpm_core::rng_util::splitmix64(master, index)
}

/// Runs `f` over every item on `threads` workers and returns the results
/// in item order.
///
/// Workers pull indices from a shared atomic cursor (work-stealing-free
/// sharding: cheap, and fair enough for coarse cells whose cost is a full
/// training run). Results land in per-index slots, so the returned `Vec`
/// is ordered identically at any thread count. With `threads <= 1` no
/// threads are spawned at all — the serial reference path.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn run_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(i, item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index visited exactly once")
        })
        .collect()
}

/// Runs `f` over every item *by mutable reference* on `threads` workers
/// and returns the results in item order — the in-place sibling of
/// [`run_indexed`], used by the fleet runner to drive a vector of live
/// simulators without moving them.
///
/// Same sharding and determinism story as [`run_indexed`]: workers claim
/// indices from a shared atomic cursor, each index is claimed exactly once
/// (so every item's mutex is uncontended — it exists only to hand the
/// mutable borrow across the scope safely under the workspace's
/// `unsafe_code = "deny"`), results land in per-index slots, and
/// `threads <= 1` runs serially on the caller's thread.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn run_indexed_mut<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let cells: Vec<Mutex<&mut T>> = items.iter_mut().map(Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else { break };
                let mut item = cell.lock().expect("item cell poisoned");
                let result = f(i, &mut item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index visited exactly once")
        })
        .collect()
}

/// The workload axis of a scenario grid: stationary specs plus the
/// piecewise-stationary composition of Fig. 2.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioWorkload {
    /// A single stationary workload (Bernoulli, MMPP, on/off, ...).
    Stationary(WorkloadSpec),
    /// Piecewise-stationary segments `(duration, spec)`.
    Piecewise(Vec<(Step, WorkloadSpec)>),
}

impl ScenarioWorkload {
    /// Builds the runtime generator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when a piecewise composition is empty or has a
    /// zero-length segment.
    pub fn build(&self) -> Result<Box<dyn RequestGenerator>, SimError> {
        match self {
            ScenarioWorkload::Stationary(spec) => Ok(spec.build()),
            ScenarioWorkload::Piecewise(segments) => {
                let segments = segments
                    .iter()
                    .map(|(d, spec)| Segment::new(*d, spec.clone()))
                    .collect::<Vec<_>>();
                Ok(Box::new(PiecewiseStationary::new(segments)?))
            }
        }
    }

    /// Long-run mean arrivals per slice, when analytically defined (the
    /// piecewise mean is duration-weighted over the segments).
    #[must_use]
    pub fn mean_rate(&self) -> Option<f64> {
        match self {
            ScenarioWorkload::Stationary(spec) => spec.mean_rate(),
            ScenarioWorkload::Piecewise(segments) => {
                let total: Step = segments.iter().map(|(d, _)| d).sum();
                if total == 0 {
                    return None;
                }
                let mut acc = 0.0;
                for (d, spec) in segments {
                    acc += *d as f64 * spec.mean_rate()?;
                }
                Some(acc / total as f64)
            }
        }
    }

    /// The analytic reference gain (long-run average cost of the optimal
    /// policy with the model known a priori): the RVI gain for Markovian
    /// stationary workloads, the duration-weighted mean of per-segment
    /// gains for piecewise compositions of Markovian segments, and `None`
    /// when any piece is non-Markovian.
    ///
    /// # Errors
    ///
    /// Propagates model-construction and solver errors.
    pub fn reference_gain(
        &self,
        power: &PowerModel,
        service: &ServiceModel,
        queue_cap: usize,
        weights: &RewardWeights,
    ) -> Result<Option<f64>, SimError> {
        let gain_of = |spec: &WorkloadSpec| -> Result<Option<f64>, SimError> {
            let Some(arrivals) = spec.markov_model() else {
                return Ok(None);
            };
            let model = build_dpm_mdp(power, service, &arrivals, queue_cap, weights.drop_penalty)?;
            let cost = model.mdp.combined_cost(
                CostWeights::new(weights.energy, weights.perf).map_err(SimError::Mdp)?,
            );
            let sol = solvers::relative_value_iteration(&model.mdp, &cost, 1e-9, 500_000)
                .map_err(SimError::Mdp)?;
            Ok(Some(sol.gain))
        };
        match self {
            ScenarioWorkload::Stationary(spec) => gain_of(spec),
            ScenarioWorkload::Piecewise(segments) => {
                let total: Step = segments.iter().map(|(d, _)| d).sum();
                if total == 0 {
                    return Ok(None);
                }
                let mut acc = 0.0;
                for (d, spec) in segments {
                    match gain_of(spec)? {
                        Some(g) => acc += *d as f64 * g,
                        None => return Ok(None),
                    }
                }
                Ok(Some(acc / total as f64))
            }
        }
    }
}

/// Shared per-grid experiment parameters.
#[derive(Debug, Clone)]
pub struct GridParams {
    /// Queue capacity of every cell.
    pub queue_cap: usize,
    /// Reward/cost weights of every cell.
    pub weights: RewardWeights,
    /// Training slices per cell.
    pub train: Step,
    /// Evaluation slices per cell.
    pub evaluate: Step,
    /// Master seed; each cell receives [`derive_cell_seed`]`(master, index)`.
    pub master_seed: u64,
    /// Engine mode every cell's simulator runs under. The default
    /// per-slice mode keeps published TSVs byte-identical; opting into
    /// [`EngineMode::EventSkip`] trades bit-exact streams for throughput
    /// (see the mode's equivalence contract).
    pub engine_mode: EngineMode,
}

impl Default for GridParams {
    fn default() -> Self {
        GridParams {
            queue_cap: 8,
            weights: RewardWeights::default(),
            train: 200_000,
            evaluate: 100_000,
            master_seed: 3,
            engine_mode: EngineMode::PerSlice,
        }
    }
}

/// One fully-specified experiment cell: everything a worker needs to train
/// and evaluate Q-DPM on one scenario, independently of every other cell.
#[derive(Debug, Clone)]
pub struct ScenarioCell {
    /// Device preset name (report label).
    pub device: String,
    /// Device power model.
    pub power: PowerModel,
    /// Workload label (report label).
    pub workload: String,
    /// Workload of this cell.
    pub kind: ScenarioWorkload,
    /// Service process.
    pub service: ServiceModel,
    /// Queue capacity.
    pub queue_cap: usize,
    /// Reward/cost weights.
    pub weights: RewardWeights,
    /// Training slices.
    pub train: Step,
    /// Evaluation slices.
    pub evaluate: Step,
    /// Replicate number along the seed axis (0-based).
    pub replicate: usize,
    /// Flat cell index in the grid (row-major).
    pub index: usize,
    /// The cell's independent derived seed.
    pub seed: u64,
    /// Engine mode for this cell's simulator (from
    /// [`GridParams::engine_mode`]).
    pub engine_mode: EngineMode,
}

/// An ordered collection of [`ScenarioCell`]s with deterministic indices
/// and per-cell derived seeds.
#[derive(Debug, Clone, Default)]
pub struct ScenarioGrid {
    cells: Vec<ScenarioCell>,
}

impl ScenarioGrid {
    /// The full cartesian grid
    /// device-major × workload × service × replicate, in that row-major
    /// order. Each cell's seed is [`derive_cell_seed`] of the master seed
    /// and the flat index, so replicates (and cells) draw independent
    /// streams.
    #[must_use]
    pub fn cartesian(
        devices: &[(String, PowerModel)],
        workloads: &[(String, ScenarioWorkload)],
        services: &[ServiceModel],
        replicates: usize,
        params: &GridParams,
    ) -> Self {
        let mut cells = Vec::with_capacity(
            devices.len() * workloads.len() * services.len() * replicates.max(1),
        );
        let mut index = 0usize;
        for (device, power) in devices {
            for (workload, kind) in workloads {
                for service in services {
                    for replicate in 0..replicates.max(1) {
                        cells.push(ScenarioCell {
                            device: device.clone(),
                            power: power.clone(),
                            workload: workload.clone(),
                            kind: kind.clone(),
                            service: *service,
                            queue_cap: params.queue_cap,
                            weights: params.weights,
                            train: params.train,
                            evaluate: params.evaluate,
                            replicate,
                            index,
                            seed: derive_cell_seed(params.master_seed, index as u64),
                            engine_mode: params.engine_mode,
                        });
                        index += 1;
                    }
                }
            }
        }
        ScenarioGrid { cells }
    }

    /// The cells, in index order.
    #[must_use]
    pub fn cells(&self) -> &[ScenarioCell] {
        &self.cells
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdpm_device::presets;

    #[test]
    fn run_indexed_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let serial = run_indexed(&items, 1, |i, &x| x * 3 + i as u64);
        for threads in [2, 4, 8] {
            let parallel = run_indexed(&items, threads, |i, &x| x * 3 + i as u64);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn run_indexed_mut_mutates_in_place_and_preserves_order() {
        let make = || (0..23u64).collect::<Vec<_>>();
        let mut serial_items = make();
        let serial = run_indexed_mut(&mut serial_items, 1, |i, x| {
            *x += 100;
            *x + i as u64
        });
        for threads in [2, 4, 8] {
            let mut items = make();
            let parallel = run_indexed_mut(&mut items, threads, |i, x| {
                *x += 100;
                *x + i as u64
            });
            assert_eq!(serial, parallel, "threads={threads}");
            assert_eq!(serial_items, items, "threads={threads}: in-place effects");
        }
    }

    #[test]
    fn run_indexed_handles_empty_and_single() {
        let empty: Vec<u64> = Vec::new();
        assert!(run_indexed(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(run_indexed(&[9u64], 4, |i, &x| (i, x)), vec![(0, 9)]);
    }

    #[test]
    fn derive_cell_seed_is_pinned() {
        // Pinned values: published sweep results depend on this derivation.
        assert_eq!(derive_cell_seed(3, 0), 0x1d0b_14e4_db01_8fed);
        assert_eq!(derive_cell_seed(3, 1), 0xb346_6f8a_7b81_a989);
        assert_eq!(derive_cell_seed(7, 0), 0x63cb_e1e4_5932_0dd7);
    }

    #[test]
    fn derive_cell_seed_distinct_across_cells_and_masters() {
        let mut seen = std::collections::HashSet::new();
        for master in 0..8u64 {
            for index in 0..64u64 {
                assert!(
                    seen.insert(derive_cell_seed(master, index)),
                    "collision at master={master} index={index}"
                );
            }
        }
    }

    #[test]
    fn cartesian_grid_shape_order_and_seeds() {
        let devices = vec![
            ("a".to_string(), presets::three_state_generic()),
            ("b".to_string(), presets::three_state_generic()),
        ];
        let workloads = vec![
            (
                "bern-0.1".to_string(),
                ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(0.1).unwrap()),
            ),
            (
                "mmpp".to_string(),
                ScenarioWorkload::Stationary(WorkloadSpec::two_mode_mmpp(0.02, 0.5, 0.01).unwrap()),
            ),
        ];
        let services = vec![presets::default_service()];
        let params = GridParams::default();
        let grid = ScenarioGrid::cartesian(&devices, &workloads, &services, 3, &params);
        // 2 devices x 2 workloads x 1 service x 3 replicates.
        assert_eq!(grid.len(), 12);
        for (i, cell) in grid.cells().iter().enumerate() {
            assert_eq!(cell.index, i);
            assert_eq!(cell.seed, derive_cell_seed(params.master_seed, i as u64));
        }
        // Row-major: device-major, replicate innermost.
        assert_eq!(grid.cells()[0].device, "a");
        assert_eq!(grid.cells()[0].workload, "bern-0.1");
        assert_eq!(grid.cells()[0].replicate, 0);
        assert_eq!(grid.cells()[2].replicate, 2);
        assert_eq!(grid.cells()[3].workload, "mmpp");
        assert_eq!(grid.cells()[6].device, "b");
    }

    #[test]
    fn piecewise_workload_mean_and_gain_are_duration_weighted() {
        let power = presets::three_state_generic();
        let service = presets::default_service();
        let weights = RewardWeights::default();
        let lo = WorkloadSpec::bernoulli(0.05).unwrap();
        let hi = WorkloadSpec::bernoulli(0.2).unwrap();
        let piecewise = ScenarioWorkload::Piecewise(vec![(3_000, lo.clone()), (1_000, hi.clone())]);
        let mean = piecewise.mean_rate().unwrap();
        assert!((mean - (0.75 * 0.05 + 0.25 * 0.2)).abs() < 1e-12);

        let g_lo = ScenarioWorkload::Stationary(lo)
            .reference_gain(&power, &service, 8, &weights)
            .unwrap()
            .unwrap();
        let g_hi = ScenarioWorkload::Stationary(hi)
            .reference_gain(&power, &service, 8, &weights)
            .unwrap()
            .unwrap();
        let g_pw = piecewise
            .reference_gain(&power, &service, 8, &weights)
            .unwrap()
            .unwrap();
        assert!((g_pw - (0.75 * g_lo + 0.25 * g_hi)).abs() < 1e-9);
    }

    #[test]
    fn non_markovian_workload_has_no_reference_gain() {
        let power = presets::three_state_generic();
        let service = presets::default_service();
        let weights = RewardWeights::default();
        let pareto = ScenarioWorkload::Stationary(WorkloadSpec::Pareto {
            alpha: 2.0,
            xm: 3.0,
        });
        assert!(pareto
            .reference_gain(&power, &service, 8, &weights)
            .unwrap()
            .is_none());
    }
}
