use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use qdpm_core::rng_util::uniform;
use qdpm_core::{
    Observation, PowerManager, RewardWeights, StateError, StateReader, StateWriter, StepOutcome,
};
use qdpm_device::{
    Device, DeviceHealth, DeviceMode, DeviceState, FaultEvent, FaultKind, FaultState, PowerModel,
    PowerStateId, Queue, QueueStats, Server, ServiceModel, Step, TransitionSpec,
};
use qdpm_workload::{ArrivalGap, DeadlineSpec, DeadlineStats, RequestGenerator};

use crate::{FaultStats, RunStats, SeriesRecorder, SimError, WindowPoint};

/// How [`Simulator::run`] advances simulated time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineMode {
    /// Execute every slice (the reference semantics; default).
    #[default]
    PerSlice,
    /// Fast-forward quiescent stretches: while the queue is empty, the
    /// engine prefetches the gap to the next arrival from the workload
    /// ([`RequestGenerator::next_arrival_gap`]) and asks the power manager
    /// to commit slices it will pass without per-slice consultation
    /// ([`PowerManager::commit_quiescent`]); committed slices are
    /// accounted in closed form. Slices nobody commits to — non-empty
    /// queues, arrival slices, managers that opt out — run through the
    /// ordinary per-slice body.
    ///
    /// Equivalence to [`EngineMode::PerSlice`]: *exact* (equal metrics)
    /// whenever neither the workload gap sampler nor the manager's
    /// commitment consumes randomness differently — trace-driven/countdown
    /// workloads with deterministic baselines, or a zero-epsilon Q-DPM
    /// agent; *statistical* (identical law, different RNG draw order) for
    /// stochastic workloads/managers with closed-form gap draws. With
    /// observation noise, an attached series recorder, or exposed
    /// requester modes the engine silently falls back to per-slice
    /// stepping, which needs no further qualification.
    EventSkip,
}

/// Prefetched workload state while fast-forwarding: how far away the next
/// arrival is and how large it will be.
#[derive(Debug, Clone, Copy)]
struct PendingGap {
    /// Arrival-free slices left before `arrival` lands.
    empty_left: u64,
    /// Arrivals of the slice that ends the gap (`None`: quiet prefetch —
    /// nothing known beyond the empty slices).
    arrival: Option<u32>,
}

/// Observation noise injected between the system and the power manager
/// (the "noisy environment" of the Fuzzy Q-DPM experiment, F4).
///
/// Noise corrupts only what the PM *sees*; energy/latency accounting uses
/// the true state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObservationNoise {
    /// Probability that the reported queue length is off by one (direction
    /// uniform, clamped at 0).
    pub queue_misread_prob: f64,
    /// Maximum uniform jitter added to the reported idle time, in slices.
    pub idle_jitter: u64,
}

impl ObservationNoise {
    /// No noise.
    #[must_use]
    pub fn none() -> Self {
        ObservationNoise {
            queue_misread_prob: 0.0,
            idle_jitter: 0,
        }
    }
}

impl Default for ObservationNoise {
    fn default() -> Self {
        ObservationNoise::none()
    }
}

/// Configuration of a [`Simulator`].
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Queue capacity.
    pub queue_cap: usize,
    /// Reward/cost weights (shared by metrics and learning agents).
    pub weights: RewardWeights,
    /// Master seed; the simulator derives independent streams for the
    /// workload, the policy, the service process and observation noise, so
    /// different policies face *identical* arrival sequences.
    pub seed: u64,
    /// Whether the hidden requester mode is exposed to the PM
    /// (`sr_mode_hint`); true only for white-box model-based baselines.
    pub expose_sr_mode: bool,
    /// Observation noise (F4).
    pub noise: ObservationNoise,
    /// How `run` advances time (default: per-slice).
    pub mode: EngineMode,
    /// Deadline tagging of arriving requests (default: `None` — untagged).
    /// When set, every admitted request draws an absolute deadline from a
    /// deterministic side stream (see [`qdpm_workload::DeadlineSpec::draw`])
    /// and the simulator maintains a [`DeadlineStats`] ledger; completions
    /// past their deadline surface as [`StepOutcome::deadline_misses`] so
    /// deadline-aware reward weights can penalize them.
    pub deadline: Option<DeadlineSpec>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            queue_cap: 8,
            weights: RewardWeights::default(),
            seed: 42,
            expose_sr_mode: false,
            noise: ObservationNoise::none(),
            mode: EngineMode::PerSlice,
            deadline: None,
        }
    }
}

/// Discrete-time DPM simulator: drives a [`PowerManager`] against a device,
/// queue and workload under the exact step semantics shared with the MDP
/// builder (`DESIGN.md` §3).
///
/// Per slice, in order: PM decides; command takes effect; arrivals enqueue;
/// service completes (geometric); energy and performance are accounted;
/// transition countdowns advance; the PM receives the outcome.
///
/// # Example
///
/// ```
/// use qdpm_core::{QDpmAgent, QDpmConfig};
/// use qdpm_device::presets;
/// use qdpm_sim::{SimConfig, Simulator};
/// use qdpm_workload::WorkloadSpec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let power = presets::three_state_generic();
/// let agent = QDpmAgent::new(&power, QDpmConfig::default())?;
/// let mut sim = Simulator::new(
///     power.clone(),
///     presets::default_service(),
///     WorkloadSpec::bernoulli(0.05)?.build(),
///     Box::new(agent),
///     SimConfig::default(),
/// )?;
/// let stats = sim.run(10_000);
/// assert_eq!(stats.steps, 10_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator {
    device: Device,
    queue: Queue,
    server: Server,
    generator: Box<dyn RequestGenerator>,
    pm: Box<dyn PowerManager>,
    weights: RewardWeights,
    expose_sr_mode: bool,
    noise: ObservationNoise,
    rng_workload: StdRng,
    rng_policy: StdRng,
    rng_service: StdRng,
    rng_noise: StdRng,
    now: Step,
    idle_slices: u64,
    stats: RunStats,
    recorder: Option<SeriesRecorder>,
    mode: EngineMode,
    /// Workload prefetch of the event-skipping engine; per-slice stepping
    /// drains it before touching the live generator again.
    pending_gap: Option<PendingGap>,
    /// The noisy observation handed to the PM as `next_obs` at the end of
    /// the previous slice, carried over so the next `decide` sees the
    /// *same* corrupted view (noise is drawn once per slice boundary).
    carried_obs: Option<Observation>,
    /// Arrivals injected from outside ([`Simulator::inject_arrivals`]),
    /// consumed — on top of the workload's own arrivals — by the next
    /// executed slice. The online fleet dispatcher routes aggregate
    /// arrivals through this door.
    injected: u32,
    /// Slice-sorted fault schedule ([`Simulator::set_fault_schedule`]);
    /// empty for fault-free runs.
    faults: Vec<FaultEvent>,
    /// Next unconsumed entry of `faults`.
    fault_pos: usize,
    /// Availability accounting the fault clock maintains.
    fault_stats: FaultStats,
    /// Deadline tagging configuration (`None`: untagged workload, and all
    /// deadline machinery below stays inert).
    deadline: Option<DeadlineSpec>,
    /// Absolute deadlines of the waiting requests, parallel to the queue
    /// (front = oldest). Kept beside the queue rather than inside it so the
    /// untagged hot path and the queue's own codec stay untouched.
    deadlines: VecDeque<u64>,
    /// Monotone per-device index of the next tagged request; the draw
    /// stream position. Only advances on arrival slices, which both engine
    /// modes execute per-slice — the determinism anchor.
    deadline_counter: u64,
    /// Seed of the deadline side stream (derived from the master seed,
    /// distinct from the four `StdRng` streams).
    deadline_seed: u64,
    /// The met/missed/slack ledger.
    deadline_stats: DeadlineStats,
}

impl Simulator {
    /// Assembles a simulator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the queue capacity is zero.
    pub fn new(
        power: PowerModel,
        service: ServiceModel,
        generator: Box<dyn RequestGenerator>,
        pm: Box<dyn PowerManager>,
        config: SimConfig,
    ) -> Result<Self, SimError> {
        let queue = Queue::new(config.queue_cap)?;
        Ok(Simulator {
            device: Device::new(power),
            queue,
            server: Server::new(service),
            generator,
            pm,
            weights: config.weights,
            expose_sr_mode: config.expose_sr_mode,
            noise: config.noise,
            rng_workload: StdRng::seed_from_u64(config.seed),
            rng_policy: StdRng::seed_from_u64(config.seed.wrapping_add(0x9e37_79b9)),
            rng_service: StdRng::seed_from_u64(config.seed.wrapping_add(0x3c6e_f372)),
            rng_noise: StdRng::seed_from_u64(config.seed.wrapping_add(0x1446_14e5)),
            now: 0,
            idle_slices: 0,
            stats: RunStats::new(),
            recorder: None,
            mode: config.mode,
            pending_gap: None,
            carried_obs: None,
            injected: 0,
            faults: Vec::new(),
            fault_pos: 0,
            fault_stats: FaultStats::default(),
            deadline: config.deadline,
            deadlines: VecDeque::new(),
            deadline_counter: 0,
            deadline_seed: config.seed.wrapping_add(0x94d0_49bb),
            deadline_stats: DeadlineStats::default(),
        })
    }

    /// Attaches a windowed series recorder (Fig. 1/2 curves). The always-on
    /// reference is the device's highest-power state.
    pub fn attach_recorder(&mut self, window: Step) {
        let p_on = self
            .device
            .model()
            .state(self.device.model().highest_power_state())
            .power;
        self.recorder = Some(SeriesRecorder::new(window, p_on));
    }

    /// Takes the recorded series, flushing a partial window.
    #[must_use]
    pub fn take_series(&mut self) -> Vec<WindowPoint> {
        self.recorder
            .take()
            .map(SeriesRecorder::finish)
            .unwrap_or_default()
    }

    /// Current slice index.
    #[must_use]
    pub fn now(&self) -> Step {
        self.now
    }

    /// The engine mode `run` advances time under (fixed at construction).
    #[must_use]
    pub fn engine_mode(&self) -> EngineMode {
        self.mode
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Read access to the power manager.
    #[must_use]
    pub fn pm(&self) -> &dyn PowerManager {
        self.pm.as_ref()
    }

    /// Mutable access to the power manager (e.g. to freeze exploration).
    #[must_use]
    pub fn pm_mut(&mut self) -> &mut dyn PowerManager {
        self.pm.as_mut()
    }

    /// The true (noise-free) observation at the start of the current slice.
    #[must_use]
    pub fn observation(&self) -> Observation {
        Observation {
            device_mode: self.device.mode(),
            queue_len: self.queue.len(),
            idle_slices: self.idle_slices,
            sr_mode_hint: self.expose_sr_mode.then(|| self.generator.mode()),
        }
    }

    /// Whether any observation noise is configured. The noise parameters
    /// are fixed at construction, so this predicate is loop-invariant and
    /// `run` dispatches on it once instead of once per slice.
    #[inline]
    fn has_noise(&self) -> bool {
        self.noise.queue_misread_prob > 0.0 || self.noise.idle_jitter > 0
    }

    /// This slice's arrival count: drains the event-skip prefetch buffer
    /// first (in per-slice mode the buffer is always empty and this is a
    /// single predictable branch), then the live generator — plus any
    /// externally injected arrivals ([`Simulator::inject_arrivals`]),
    /// which ride on top of the workload's own stream without touching it.
    #[inline]
    fn slice_arrivals(&mut self) -> u32 {
        let own = match self.pending_gap {
            None => self.generator.next_arrivals(&mut self.rng_workload),
            Some(mut gap) => {
                if gap.empty_left > 0 {
                    gap.empty_left -= 1;
                    self.pending_gap = if gap.empty_left == 0 && gap.arrival.is_none() {
                        None
                    } else {
                        Some(gap)
                    };
                    0
                } else if let Some(count) = gap.arrival {
                    self.pending_gap = None;
                    count
                } else {
                    // Fully drained quiet prefetch: back to the live
                    // generator.
                    self.pending_gap = None;
                    self.generator.next_arrivals(&mut self.rng_workload)
                }
            }
        };
        own + std::mem::take(&mut self.injected)
    }

    /// Queues `count` externally dispatched arrivals for the *next executed
    /// slice*, on top of whatever the simulator's own workload emits there.
    ///
    /// This is the online-dispatch door: a fleet coordinator routes each
    /// aggregate arrival against live device state and injects it into the
    /// chosen member just before stepping that member's arrival slice. The
    /// injection is deterministic — it changes no RNG stream — and both
    /// engine modes honour it ([`Simulator::run`] under
    /// [`EngineMode::EventSkip`] refuses to fast-forward past pending
    /// injected arrivals).
    pub fn inject_arrivals(&mut self, count: u32) {
        self.injected += count;
    }

    /// Moves the device into `state` (cancelling any in-flight transition)
    /// without touching queue, clock, statistics or RNG streams. Intended
    /// before the first slice — e.g. a power-capped rack cold-boots its
    /// members in their lowest-power state so the cap holds from slice 0.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range for the device's power model.
    pub fn reset_device_to(&mut self, state: PowerStateId) {
        self.device.reset_to(state);
    }

    /// Installs the slice-sorted fault schedule this simulator will replay
    /// (see `qdpm_workload::FaultInjector::plan`). The schedule is part of
    /// the run's deterministic plan: injection consults only the simulation
    /// clock, never thread timing or live state, so fault-injected runs
    /// stay bit-exact across engine modes and thread counts.
    ///
    /// # Panics
    ///
    /// Panics if called after the clock has advanced or if `events` is not
    /// sorted by slice.
    pub fn set_fault_schedule(&mut self, events: Vec<FaultEvent>) {
        assert_eq!(
            self.now, 0,
            "fault schedules must be installed before the run starts"
        );
        assert!(
            events.windows(2).all(|w| w[0].at <= w[1].at),
            "fault schedule must be slice-sorted"
        );
        self.faults = events;
        self.fault_pos = 0;
    }

    /// The device's current health, normalized against the clock (an
    /// expired fault window the lazy fault clock has not cleared yet reads
    /// healthy).
    #[must_use]
    pub fn health(&self) -> DeviceHealth {
        match self.device.fault() {
            FaultState::Healthy => DeviceHealth::Healthy,
            FaultState::Degraded { until, .. } => {
                if self.now < until {
                    DeviceHealth::Degraded
                } else {
                    DeviceHealth::Healthy
                }
            }
            FaultState::Down { until, .. } => {
                if self.now < until {
                    DeviceHealth::Down
                } else {
                    DeviceHealth::Healthy
                }
            }
        }
    }

    /// Whether a fault window has expired but the lazy fault clock has not
    /// applied the revival reset yet. In this gap [`Simulator::health`]
    /// already reads healthy while [`Simulator::observation`] still shows
    /// the stale pre-crash device mode; the device's true post-revival
    /// state is its lowest power state. A capped rack's budget refresh
    /// must bound such a member at its floor, not at the stale mode's
    /// demand.
    #[must_use]
    pub fn pending_revival(&self) -> bool {
        matches!(self.device.fault(), FaultState::Down { until, .. } if self.now >= until)
    }

    /// The fault-specified slice draw while the device is down
    /// (normalized like [`Simulator::health`]), `None` otherwise. A capped
    /// rack reclaims the rest of the member's nominal budget from this.
    #[must_use]
    pub fn fault_down_power(&self) -> Option<f64> {
        if self.health() == DeviceHealth::Down {
            self.device.fault_down_power()
        } else {
            None
        }
    }

    /// Availability accounting maintained by the fault clock.
    #[must_use]
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }

    /// The deadline ledger (all zeros when the workload is untagged).
    ///
    /// Conservation invariant (asserted by the chaos suite): at every
    /// slice boundary,
    /// `tagged == met + missed + dropped + requeued + lost + queue_len` —
    /// every tagged arrival is waiting or in exactly one terminal bucket.
    #[must_use]
    pub fn deadline_stats(&self) -> &DeadlineStats {
        &self.deadline_stats
    }

    /// The deadline spec arrivals are tagged with, if any.
    #[must_use]
    pub fn deadline_spec(&self) -> Option<DeadlineSpec> {
        self.deadline
    }

    /// Admits this slice's arrivals under queue admission control, tagging
    /// each admitted request with an absolute deadline when tagging is
    /// enabled; returns the number rejected by a full queue. The untagged
    /// arm is byte-identical to the pre-deadline admission loop.
    #[inline]
    fn admit_arrivals(&mut self, arrivals: u32) -> u32 {
        let mut dropped = 0u32;
        if let Some(spec) = self.deadline {
            for _ in 0..arrivals {
                self.deadline_stats.tagged += 1;
                if self.queue.push(self.now) {
                    let rel = spec.draw(self.deadline_seed, self.deadline_counter);
                    self.deadline_counter += 1;
                    self.deadlines.push_back(self.now.saturating_add(rel));
                } else {
                    dropped += 1;
                    self.deadline_stats.dropped += 1;
                }
            }
        } else {
            for _ in 0..arrivals {
                if !self.queue.push(self.now) {
                    dropped += 1;
                }
            }
        }
        dropped
    }

    /// Classifies the completion popped at the current slice against its
    /// deadline, moving the ledger; returns 1 when the deadline was
    /// missed (the `deadline_misses` contribution), 0 otherwise.
    #[inline]
    fn settle_completion(&mut self) -> u32 {
        if self.deadline.is_none() {
            return 0;
        }
        let dl = self
            .deadlines
            .pop_front()
            .expect("tagged queue carries one deadline per waiting request");
        if self.now <= dl {
            self.deadline_stats.met += 1;
            self.deadline_stats.slack_sum += dl - self.now;
            0
        } else {
            self.deadline_stats.missed += 1;
            self.deadline_stats.tardiness_sum += self.now - dl;
            1
        }
    }

    /// Removes every admitted-but-unserved request from the queue (and any
    /// partial service progress), returning how many were stranded. A fleet
    /// coordinator calls this at a crash-onset barrier to move the doomed
    /// queue into its retry machinery *before* the onset slice executes;
    /// the crash itself then finds an empty queue and loses nothing. The
    /// harvested requests must be re-accounted by the caller — they are no
    /// longer visible in this simulator's queue or stats.
    pub fn harvest_stranded(&mut self) -> u64 {
        let n = self.queue.drain_all() as u64;
        self.server.set_progress(0);
        if self.deadline.is_some() {
            // Harvested requests re-enter some device's arrival path and
            // are tagged again there with fresh deadlines.
            self.deadline_stats.requeued += n;
            self.deadlines.clear();
        }
        n
    }

    /// Whether the fault clock has anything left to do — unconsumed
    /// schedule entries or an active fault window. False for the entire
    /// lifetime of a fault-free run: the per-slice hot path stays a single
    /// predictable branch.
    #[inline]
    fn fault_clock_pending(&self) -> bool {
        self.fault_pos < self.faults.len() || !self.device.fault().is_healthy()
    }

    /// Whether the next scheduled fault is due at the current slice.
    #[inline]
    fn fault_due(&self) -> bool {
        self.faults
            .get(self.fault_pos)
            .is_some_and(|e| e.at <= self.now)
    }

    /// Advances the fault axis to the current slice: expires fault windows
    /// whose deadline has been reached (rebooting a recovered crash into
    /// the lowest-power state), then applies any scheduled fault due now.
    /// Idempotent at a fixed `now`.
    fn tick_fault_clock(&mut self) {
        match self.device.fault() {
            FaultState::Down { until, .. } if self.now >= until => {
                // Reboot: back in the lowest-power state, no in-flight
                // transition, and any carried noisy view is stale.
                self.device.clear_fault();
                let lowest = self.device.model().lowest_power_state();
                self.device.reset_to(lowest);
                self.carried_obs = None;
            }
            FaultState::Degraded { until, .. } if self.now >= until => {
                self.device.clear_fault();
            }
            _ => {}
        }
        while let Some(&event) = self.faults.get(self.fault_pos) {
            if event.at > self.now {
                break;
            }
            self.fault_pos += 1;
            if event.at < self.now {
                // Stale entry (scheduled inside another fault's window and
                // skipped past): drop it rather than firing late.
                continue;
            }
            if self.device.fault_down_power().is_some() {
                // A down device cannot fault again.
                continue;
            }
            self.apply_fault(event.kind);
        }
    }

    /// Applies one fault to the device, moving the availability books.
    fn apply_fault(&mut self, kind: FaultKind) {
        self.fault_stats.faults_injected += 1;
        match kind {
            FaultKind::TransientCrash {
                down_for,
                down_power,
            } => {
                let lost = self.queue.drain_all() as u64;
                self.fault_stats.queue_lost += lost;
                if self.deadline.is_some() {
                    self.deadline_stats.lost += lost;
                    self.deadlines.clear();
                }
                self.server.set_progress(0);
                self.device.set_fault(FaultState::Down {
                    until: self.now.saturating_add(down_for.max(1)),
                    power: down_power,
                    queue_preserved: false,
                });
            }
            FaultKind::FailStop { down_power } => {
                self.device.set_fault(FaultState::Down {
                    until: Step::MAX,
                    power: down_power,
                    queue_preserved: true,
                });
            }
            FaultKind::Straggler { slowdown, window } => {
                self.device.set_fault(FaultState::Degraded {
                    slowdown: slowdown.max(1),
                    until: self.now.saturating_add(window),
                    opportunities: 0,
                });
            }
        }
    }

    /// One slice of downtime: the power state machine is suspended (no PM
    /// decision or observation, no device tick, no service, no RNG draws),
    /// the device draws the fault-specified `power`, and arrivals keep
    /// landing on the queue under normal admission control. Suspending the
    /// PM keeps every RNG stream identical across engine modes — down
    /// slices execute per-slice in both.
    fn step_down_slice<const RECORD: bool>(&mut self, power: f64) -> StepOutcome {
        let arrivals = self.slice_arrivals();
        let dropped = self.admit_arrivals(arrivals);
        self.idle_slices = if arrivals > 0 {
            0
        } else {
            self.idle_slices + 1
        };
        let outcome = StepOutcome {
            energy: power,
            queue_len: self.queue.len(),
            dropped,
            completed: 0,
            arrivals,
            deadline_misses: 0,
        };
        self.now += 1;
        self.stats.record(&outcome, &self.weights, 0);
        self.fault_stats.downtime_slices += 1;
        if RECORD {
            if let Some(rec) = &mut self.recorder {
                rec.record(&outcome, &self.weights);
            }
        }
        outcome
    }

    /// The fault-aware slice: ticks the fault clock, short-circuits down
    /// slices, and otherwise runs the ordinary specialized body. For
    /// fault-free runs this is one predictable extra branch per slice.
    #[inline]
    fn step_slice<const NOISY: bool, const RECORD: bool>(&mut self) -> StepOutcome {
        if self.fault_clock_pending() {
            self.tick_fault_clock();
            if let Some(power) = self.device.fault_down_power() {
                return self.step_down_slice::<RECORD>(power);
            }
        }
        self.step_impl::<NOISY, RECORD>()
    }

    /// Checkpoint support: appends the simulator's entire dynamic state —
    /// device mode and in-flight transition, waiting queue and its
    /// counters, service progress, all four RNG streams, the clock, the
    /// cumulative [`RunStats`], the event-skip prefetch, the carried noisy
    /// observation, pending injected arrivals, the deadline ledger and the
    /// waiting requests' deadlines, and the workload's and power
    /// manager's own state ([`RequestGenerator::save_state`],
    /// [`PowerManager::save_state`]) — to a payload.
    ///
    /// Restoring the payload into a freshly built simulator with the same
    /// configuration ([`Simulator::load_state`]) continues the run
    /// bit-identically to never having stopped. An attached
    /// [`SeriesRecorder`] is *not* checkpointed; long-running serving does
    /// not use one.
    pub fn save_state(&self, w: &mut StateWriter) {
        put_device_state(w, self.device.state());
        let waiting: Vec<Step> = self.queue.arrival_times().collect();
        w.put_usize(waiting.len());
        for t in waiting {
            w.put_u64(t);
        }
        let qs = *self.queue.stats();
        w.put_u64(qs.enqueued);
        w.put_u64(qs.dropped);
        w.put_u64(qs.dequeued);
        w.put_u64(qs.total_wait);
        w.put_u32(self.server.progress());
        for rng in [
            &self.rng_workload,
            &self.rng_policy,
            &self.rng_service,
            &self.rng_noise,
        ] {
            for word in rng.state() {
                w.put_u64(word);
            }
        }
        w.put_u64(self.now);
        w.put_u64(self.idle_slices);
        w.put_u64(self.stats.steps);
        w.put_f64(self.stats.total_energy);
        w.put_f64(self.stats.total_cost);
        w.put_u64(self.stats.arrivals);
        w.put_u64(self.stats.completed);
        w.put_u64(self.stats.dropped);
        w.put_f64(self.stats.queue_len_sum);
        w.put_u64(self.stats.total_wait);
        match self.pending_gap {
            None => w.put_bool(false),
            Some(gap) => {
                w.put_bool(true);
                w.put_u64(gap.empty_left);
                match gap.arrival {
                    None => w.put_bool(false),
                    Some(count) => {
                        w.put_bool(true);
                        w.put_u32(count);
                    }
                }
            }
        }
        match &self.carried_obs {
            None => w.put_bool(false),
            Some(obs) => {
                w.put_bool(true);
                put_observation(w, obs);
            }
        }
        w.put_u32(self.injected);
        put_fault_state(w, self.device.fault());
        w.put_usize(self.fault_pos);
        w.put_u64(self.fault_stats.faults_injected);
        w.put_u64(self.fault_stats.downtime_slices);
        w.put_u64(self.fault_stats.queue_lost);
        w.put_usize(self.deadlines.len());
        for &d in &self.deadlines {
            w.put_u64(d);
        }
        w.put_u64(self.deadline_counter);
        self.deadline_stats.save_state(w);
        self.generator.save_state(w);
        self.pm.save_state(w);
    }

    /// Checkpoint support: restores state written by
    /// [`Simulator::save_state`] into a simulator built with the same
    /// configuration (model, service, workload spec, power manager kind,
    /// seed, engine mode).
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] when the payload does not decode or a
    /// restored value is out of range for this simulator's models. On
    /// error the simulator may be partially restored and must be
    /// discarded, not resumed.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let n_states = self.device.model().n_states();
        let device = get_device_state(r, n_states)?;
        let n_waiting = r.get_usize()?;
        if n_waiting > self.queue.capacity() {
            return Err(StateError::BadValue(format!(
                "restored queue of {n_waiting} requests exceeds capacity {}",
                self.queue.capacity()
            )));
        }
        let mut waiting = Vec::with_capacity(n_waiting);
        for _ in 0..n_waiting {
            waiting.push(r.get_u64()?);
        }
        let qstats = QueueStats {
            enqueued: r.get_u64()?,
            dropped: r.get_u64()?,
            dequeued: r.get_u64()?,
            total_wait: r.get_u64()?,
        };
        let progress = r.get_u32()?;
        let mut rng_states = [[0u64; 4]; 4];
        for state in &mut rng_states {
            for word in state.iter_mut() {
                *word = r.get_u64()?;
            }
        }
        let now = r.get_u64()?;
        let idle_slices = r.get_u64()?;
        let stats = RunStats {
            steps: r.get_u64()?,
            total_energy: r.get_f64()?,
            total_cost: r.get_f64()?,
            arrivals: r.get_u64()?,
            completed: r.get_u64()?,
            dropped: r.get_u64()?,
            queue_len_sum: r.get_f64()?,
            total_wait: r.get_u64()?,
        };
        let pending_gap = if r.get_bool()? {
            let empty_left = r.get_u64()?;
            let arrival = if r.get_bool()? {
                Some(r.get_u32()?)
            } else {
                None
            };
            Some(PendingGap {
                empty_left,
                arrival,
            })
        } else {
            None
        };
        let carried_obs = if r.get_bool()? {
            Some(get_observation(r, n_states)?)
        } else {
            None
        };
        let injected = r.get_u32()?;
        let fault = get_fault_state(r)?;
        let fault_pos = r.get_usize()?;
        if fault_pos > self.faults.len() {
            return Err(StateError::BadValue(format!(
                "restored fault cursor {fault_pos} past schedule of {} events",
                self.faults.len()
            )));
        }
        let fault_stats = FaultStats {
            faults_injected: r.get_u64()?,
            downtime_slices: r.get_u64()?,
            queue_lost: r.get_u64()?,
        };
        let n_deadlines = r.get_usize()?;
        let expected_deadlines = if self.deadline.is_some() {
            n_waiting
        } else {
            0
        };
        if n_deadlines != expected_deadlines {
            return Err(StateError::BadValue(format!(
                "restored {n_deadlines} deadlines for a queue of {n_waiting} \
                 requests (tagging {})",
                if self.deadline.is_some() { "on" } else { "off" }
            )));
        }
        let mut deadlines = VecDeque::with_capacity(n_deadlines);
        for _ in 0..n_deadlines {
            deadlines.push_back(r.get_u64()?);
        }
        let deadline_counter = r.get_u64()?;
        let deadline_stats = DeadlineStats::load_state(r)?;
        self.device.restore_state(device);
        self.device.set_fault(fault);
        self.fault_pos = fault_pos;
        self.fault_stats = fault_stats;
        self.queue
            .restore(&waiting, qstats)
            .map_err(|e| StateError::BadValue(e.to_string()))?;
        self.server.set_progress(progress);
        self.rng_workload = StdRng::from_state(rng_states[0]);
        self.rng_policy = StdRng::from_state(rng_states[1]);
        self.rng_service = StdRng::from_state(rng_states[2]);
        self.rng_noise = StdRng::from_state(rng_states[3]);
        self.now = now;
        self.idle_slices = idle_slices;
        self.stats = stats;
        self.pending_gap = pending_gap;
        self.carried_obs = carried_obs;
        self.injected = injected;
        self.deadlines = deadlines;
        self.deadline_counter = deadline_counter;
        self.deadline_stats = deadline_stats;
        self.generator.load_state(r)?;
        self.pm.load_state(r)
    }

    /// Applies observation noise for the PM's view.
    fn noisy(&mut self, obs: Observation) -> Observation {
        let mut out = obs;
        if self.noise.queue_misread_prob > 0.0
            && uniform(&mut self.rng_noise) < self.noise.queue_misread_prob
        {
            let up = uniform(&mut self.rng_noise) < 0.5;
            out.queue_len = if up {
                out.queue_len + 1
            } else {
                out.queue_len.saturating_sub(1)
            };
        }
        if self.noise.idle_jitter > 0 {
            let j = (uniform(&mut self.rng_noise) * (2 * self.noise.idle_jitter + 1) as f64) as u64;
            out.idle_slices = (out.idle_slices + j).saturating_sub(self.noise.idle_jitter);
        }
        out
    }

    /// Advances the simulation by one slice and returns its outcome.
    pub fn step(&mut self) -> StepOutcome {
        match (self.has_noise(), self.recorder.is_some()) {
            (false, false) => self.step_slice::<false, false>(),
            (false, true) => self.step_slice::<false, true>(),
            (true, false) => self.step_slice::<true, false>(),
            (true, true) => self.step_slice::<true, true>(),
        }
    }

    /// The slice body, monomorphized over the loop-invariant configuration:
    /// `NOISY` (observation noise configured) and `RECORD` (series recorder
    /// attached). The clean specialization is branch- and carry-free: with
    /// no noise, the observation reported as `next_obs` at the end of a
    /// slice is exactly the true observation at the start of the next one
    /// (nothing advances between the two reads), so recomputing it is
    /// stream- and value-identical to carrying it — and the `carried_obs`
    /// slot stays permanently `None`.
    #[inline]
    fn step_impl<const NOISY: bool, const RECORD: bool>(&mut self) -> StepOutcome {
        // 1. Decide. The PM sees the possibly-noisy observation — the one
        //    already reported as `next_obs` at the end of the previous
        //    slice, so its TD next-state and the state it acts from agree.
        let obs = if NOISY {
            match self.carried_obs.take() {
                Some(o) => o,
                None => {
                    let true_obs = self.observation();
                    self.noisy(true_obs)
                }
            }
        } else {
            self.observation()
        };
        let command = self.pm.decide(&obs, &mut self.rng_policy);

        // 2. Command takes effect; instant switches pay their energy now.
        let cmd_energy = self.device.command(command).immediate_energy();

        // 3. Arrivals (served from the event-skip prefetch when present).
        let arrivals = self.slice_arrivals();
        let dropped = self.admit_arrivals(arrivals);
        self.idle_slices = if arrivals > 0 {
            0
        } else {
            self.idle_slices + 1
        };

        // 4. Device elapses the slice (residency/transition energy).
        let tick = self.device.tick();

        // 5. Service, gated by the fault axis: a straggling device takes
        //    only every slowdown-th opportunity, and a gated (or fault-free
        //    idle) slice draws nothing from the service stream. The serving
        //    state's operating point scales the completion law (DVFS) —
        //    `advance_scaled` is the identity at nominal frequency, so
        //    models without operating points stay bit-identical.
        let mut completed = 0u32;
        let mut wait_of_completed = 0u64;
        let mut deadline_misses = 0u32;
        if tick.can_serve && !self.queue.is_empty() && self.device.service_gate() {
            let u = uniform(&mut self.rng_service);
            let freq = self.device.operating_freq();
            if self.server.advance_scaled(u, freq) {
                wait_of_completed = self
                    .queue
                    .pop(self.now)
                    .expect("non-empty queue pops successfully");
                completed = 1;
                deadline_misses = self.settle_completion();
            }
        }

        // 6. Accounting and feedback.
        let outcome = StepOutcome {
            energy: cmd_energy + tick.energy,
            queue_len: self.queue.len(),
            dropped,
            completed,
            arrivals,
            deadline_misses,
        };
        self.now += 1;
        self.stats
            .record(&outcome, &self.weights, wait_of_completed);
        if RECORD {
            if let Some(rec) = &mut self.recorder {
                rec.record(&outcome, &self.weights);
            }
        }
        let next_obs = if NOISY {
            let true_obs = self.observation();
            self.noisy(true_obs)
        } else {
            self.observation()
        };
        self.pm.observe(&outcome, &next_obs);
        if NOISY {
            self.carried_obs = Some(next_obs);
        }
        outcome
    }

    /// Makes sure the gap to the next arrival is prefetched (drawing from
    /// the workload when nothing is buffered; the prefetch window is
    /// `limit` slices) and returns how many arrival-free slices lie ahead.
    fn ensure_gap(&mut self, limit: u64) -> u64 {
        if self.pending_gap.is_none() {
            let gap = self
                .generator
                .next_arrival_gap(&mut self.rng_workload, limit);
            self.pending_gap = Some(match gap {
                ArrivalGap::Arrival { empty, count } => PendingGap {
                    empty_left: empty,
                    arrival: Some(count),
                },
                ArrivalGap::Quiet { advanced } => PendingGap {
                    empty_left: advanced,
                    arrival: None,
                },
            });
        }
        self.pending_gap.map_or(0, |g| g.empty_left)
    }

    /// The event-skipping run loop (see [`EngineMode::EventSkip`]).
    ///
    /// Per iteration: a non-empty queue or an imminent arrival runs one
    /// ordinary slice; otherwise the manager is offered the arrival-free
    /// window (capped to the in-flight transition, if any) and every slice
    /// it commits to is accounted in closed form — no decide/observe, no
    /// device/queue/service work, no RNG. A zero commitment also runs one
    /// ordinary slice, so every iteration makes progress.
    fn run_event_skip(&mut self, steps: Step) -> RunStats {
        // Per-slice-only machinery configured: fall back wholesale onto
        // the hoisted specialized loops.
        if self.has_noise() || self.recorder.is_some() || self.expose_sr_mode {
            return self.run_per_slice(steps);
        }
        let before = self.stats.clone();
        let mut remaining = steps;
        while remaining > 0 {
            // An active fault window (down or degraded) or a fault due at
            // this slice pins per-slice execution: downtime and degraded
            // service are accounted slice by slice in both engine modes,
            // which keeps fault-injected runs bit-exact by construction.
            if !self.device.fault().is_healthy() || self.fault_due() {
                self.step_slice::<false, false>();
                remaining -= 1;
                continue;
            }
            // A non-empty queue or pending injected arrivals pin the next
            // slice to ordinary execution — fast-forwarding would land the
            // injection on the wrong slice.
            if !self.queue.is_empty() || self.injected > 0 {
                self.step_slice::<false, false>();
                remaining -= 1;
                continue;
            }
            // A scheduled fault bounds the commit-quiescent horizon exactly
            // like an arrival: never prefetch or commit past its onset.
            let fault_window = self
                .faults
                .get(self.fault_pos)
                .map_or(u64::MAX, |e| e.at.saturating_sub(self.now));
            let window = remaining.min(fault_window);
            let empty_ahead = self.ensure_gap(window).min(window);
            if empty_ahead == 0 {
                self.step_slice::<false, false>();
                remaining -= 1;
                continue;
            }
            // How much was actually offered to the manager (the transient
            // arm caps the window at the transition end, which is not a
            // decline).
            let mut offered = empty_ahead;
            let committed = match self.device.mode() {
                DeviceMode::Operational(state) => {
                    let per_slice = StepOutcome {
                        energy: self.device.model().state(state).power,
                        queue_len: 0,
                        dropped: 0,
                        completed: 0,
                        arrivals: 0,
                        deadline_misses: 0,
                    };
                    let obs = self.observation();
                    let k = self
                        .pm
                        .commit_quiescent(&obs, &per_slice, empty_ahead, &mut self.rng_policy)
                        .min(empty_ahead); // never trust a manager past its window
                    if k > 0 {
                        // Residency in an operational state leaves the
                        // device untouched; only the books move.
                        self.stats.record_quiescent(&per_slice, &self.weights, k);
                    }
                    k
                }
                DeviceMode::Transitioning {
                    remaining: left, ..
                } => {
                    let per_slice = StepOutcome {
                        energy: self
                            .device
                            .transient_slice_energy()
                            .expect("transitioning device has an active transition"),
                        queue_len: 0,
                        dropped: 0,
                        completed: 0,
                        arrivals: 0,
                        deadline_misses: 0,
                    };
                    let cap = empty_ahead.min(u64::from(left));
                    offered = cap;
                    let obs = self.observation();
                    let k = self
                        .pm
                        .commit_quiescent(&obs, &per_slice, cap, &mut self.rng_policy)
                        .min(cap); // never trust a manager past its window
                                   // The transition countdown must actually advance (and
                                   // complete when the stretch covers it).
                    for _ in 0..k {
                        let tick = self.device.tick();
                        debug_assert_eq!(tick.energy, per_slice.energy);
                    }
                    if k > 0 {
                        self.stats.record_quiescent(&per_slice, &self.weights, k);
                    }
                    k
                }
            };
            self.now += committed;
            self.idle_slices += committed;
            if let Some(gap) = &mut self.pending_gap {
                gap.empty_left -= committed;
            }
            remaining -= committed;
            // The manager declined (part of) the offered window: the next
            // slice is its decision epoch — run it per slice right away
            // instead of re-offering a window it just turned down. The
            // declined slice lies strictly inside the fault-free window
            // (committed < offered <= window), so it cannot cross an onset.
            if committed < offered && remaining > 0 {
                self.step_slice::<false, false>();
                remaining -= 1;
            }
        }
        diff_stats(&self.stats, &before)
    }

    /// Runs `steps` slices and returns the statistics of that stretch.
    ///
    /// In [`EngineMode::PerSlice`] (the default) the noise/recorder
    /// configuration is loop-invariant, so the dispatch is hoisted out of
    /// the loop and each slice runs the already specialized body
    /// (identical streams and outcomes to calling [`Simulator::step`] in a
    /// loop). In [`EngineMode::EventSkip`] quiescent stretches are
    /// fast-forwarded instead (see the mode's documentation for the exact
    /// equivalence contract); calling [`Simulator::step`] directly always
    /// executes a single ordinary slice in either mode.
    pub fn run(&mut self, steps: Step) -> RunStats {
        if self.mode == EngineMode::EventSkip {
            return self.run_event_skip(steps);
        }
        self.run_per_slice(steps)
    }

    /// The per-slice run loop: dispatches once on the loop-invariant
    /// (noise, recorder) configuration, then drives the specialized body.
    fn run_per_slice(&mut self, steps: Step) -> RunStats {
        let before = self.stats.clone();
        match (self.has_noise(), self.recorder.is_some()) {
            (false, false) => {
                for _ in 0..steps {
                    self.step_slice::<false, false>();
                }
            }
            (false, true) => {
                for _ in 0..steps {
                    self.step_slice::<false, true>();
                }
            }
            (true, false) => {
                for _ in 0..steps {
                    self.step_slice::<true, false>();
                }
            }
            (true, true) => {
                for _ in 0..steps {
                    self.step_slice::<true, true>();
                }
            }
        }
        diff_stats(&self.stats, &before)
    }
}

/// Reads a power state id, validated against the model's state count.
fn get_state_id(r: &mut StateReader<'_>, n_states: usize) -> Result<PowerStateId, StateError> {
    let index = r.get_usize()?;
    if index >= n_states {
        return Err(StateError::BadValue(format!(
            "power state {index} out of range for model of {n_states} states"
        )));
    }
    Ok(PowerStateId::from_index(index))
}

/// Appends a [`DeviceMode`] (tag byte plus fields).
fn put_device_mode(w: &mut StateWriter, mode: DeviceMode) {
    match mode {
        DeviceMode::Operational(state) => {
            w.put_u8(0);
            w.put_usize(state.index());
        }
        DeviceMode::Transitioning {
            from,
            to,
            remaining,
        } => {
            w.put_u8(1);
            w.put_usize(from.index());
            w.put_usize(to.index());
            w.put_u32(remaining);
        }
    }
}

/// Reads a [`DeviceMode`] written by [`put_device_mode`].
fn get_device_mode(r: &mut StateReader<'_>, n_states: usize) -> Result<DeviceMode, StateError> {
    match r.get_u8()? {
        0 => Ok(DeviceMode::Operational(get_state_id(r, n_states)?)),
        1 => {
            let from = get_state_id(r, n_states)?;
            let to = get_state_id(r, n_states)?;
            let remaining = r.get_u32()?;
            if remaining == 0 {
                return Err(StateError::BadValue(
                    "transitioning device with zero slices remaining".into(),
                ));
            }
            Ok(DeviceMode::Transitioning {
                from,
                to,
                remaining,
            })
        }
        tag => Err(StateError::BadValue(format!(
            "unknown device mode tag {tag}"
        ))),
    }
}

/// Appends a [`DeviceState`] (mode plus any in-flight transition spec).
fn put_device_state(w: &mut StateWriter, state: DeviceState) {
    put_device_mode(w, state.mode);
    match state.active_transition {
        None => w.put_bool(false),
        Some(spec) => {
            w.put_bool(true);
            w.put_u32(spec.latency);
            w.put_f64(spec.energy);
        }
    }
}

/// Reads a [`DeviceState`] written by [`put_device_state`].
fn get_device_state(r: &mut StateReader<'_>, n_states: usize) -> Result<DeviceState, StateError> {
    let mode = get_device_mode(r, n_states)?;
    let active_transition = if r.get_bool()? {
        Some(TransitionSpec {
            latency: r.get_u32()?,
            energy: r.get_f64()?,
        })
    } else {
        None
    };
    if mode.is_transitioning() && active_transition.is_none() {
        return Err(StateError::BadValue(
            "transitioning device without an active transition spec".into(),
        ));
    }
    Ok(DeviceState {
        mode,
        active_transition,
    })
}

/// Appends a [`FaultState`] (tag byte plus fields).
fn put_fault_state(w: &mut StateWriter, fault: FaultState) {
    match fault {
        FaultState::Healthy => w.put_u8(0),
        FaultState::Degraded {
            slowdown,
            until,
            opportunities,
        } => {
            w.put_u8(1);
            w.put_u64(slowdown);
            w.put_u64(until);
            w.put_u64(opportunities);
        }
        FaultState::Down {
            until,
            power,
            queue_preserved,
        } => {
            w.put_u8(2);
            w.put_u64(until);
            w.put_f64(power);
            w.put_bool(queue_preserved);
        }
    }
}

/// Reads a [`FaultState`] written by [`put_fault_state`].
fn get_fault_state(r: &mut StateReader<'_>) -> Result<FaultState, StateError> {
    match r.get_u8()? {
        0 => Ok(FaultState::Healthy),
        1 => {
            let slowdown = r.get_u64()?;
            if slowdown == 0 {
                return Err(StateError::BadValue(
                    "degraded device with zero slowdown".into(),
                ));
            }
            Ok(FaultState::Degraded {
                slowdown,
                until: r.get_u64()?,
                opportunities: r.get_u64()?,
            })
        }
        2 => Ok(FaultState::Down {
            until: r.get_u64()?,
            power: r.get_f64()?,
            queue_preserved: r.get_bool()?,
        }),
        tag => Err(StateError::BadValue(format!(
            "unknown fault state tag {tag}"
        ))),
    }
}

/// Appends an [`Observation`] (the carried noisy view).
fn put_observation(w: &mut StateWriter, obs: &Observation) {
    put_device_mode(w, obs.device_mode);
    w.put_usize(obs.queue_len);
    w.put_u64(obs.idle_slices);
    match obs.sr_mode_hint {
        None => w.put_bool(false),
        Some(mode) => {
            w.put_bool(true);
            w.put_usize(mode);
        }
    }
}

/// Reads an [`Observation`] written by [`put_observation`].
fn get_observation(r: &mut StateReader<'_>, n_states: usize) -> Result<Observation, StateError> {
    let device_mode = get_device_mode(r, n_states)?;
    let queue_len = r.get_usize()?;
    let idle_slices = r.get_u64()?;
    let sr_mode_hint = if r.get_bool()? {
        Some(r.get_usize()?)
    } else {
        None
    };
    Ok(Observation {
        device_mode,
        queue_len,
        idle_slices,
        sr_mode_hint,
    })
}

/// Subtracts two cumulative statistics (run-stretch accounting).
fn diff_stats(after: &RunStats, before: &RunStats) -> RunStats {
    RunStats {
        steps: after.steps - before.steps,
        total_energy: after.total_energy - before.total_energy,
        total_cost: after.total_cost - before.total_cost,
        arrivals: after.arrivals - before.arrivals,
        completed: after.completed - before.completed,
        dropped: after.dropped - before.dropped,
        queue_len_sum: after.queue_len_sum - before.queue_len_sum,
        total_wait: after.total_wait - before.total_wait,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::AlwaysOn;
    use qdpm_device::presets;
    use qdpm_workload::WorkloadSpec;

    fn sim_with(p_arrival: f64, seed: u64) -> Simulator {
        let power = presets::three_state_generic();
        let pm = AlwaysOn::new(&power);
        Simulator::new(
            power,
            presets::default_service(),
            WorkloadSpec::bernoulli(p_arrival).unwrap().build(),
            Box::new(pm),
            SimConfig {
                seed,
                ..SimConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn always_on_energy_is_exact() {
        let mut sim = sim_with(0.0, 1);
        let stats = sim.run(1000);
        // Highest-power state draws 1.0 per slice, no transitions.
        assert!((stats.total_energy - 1000.0).abs() < 1e-9);
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn conservation_arrivals_completed_dropped_queued() {
        let mut sim = sim_with(0.3, 7);
        let stats = sim.run(5000);
        let queued = sim.observation().queue_len as u64;
        assert_eq!(stats.arrivals, stats.completed + stats.dropped + queued);
    }

    #[test]
    fn same_seed_same_workload_across_policies() {
        // Two different policy RNG consumption patterns must not change
        // the arrival sequence.
        let mut a = sim_with(0.3, 99);
        let mut b = sim_with(0.3, 99);
        let sa = a.run(2000);
        // run b in two chunks to desync any shared state hypothetically
        let sb1 = b.run(1000);
        let sb2 = b.run(1000);
        assert_eq!(sa.arrivals, sb1.arrivals + sb2.arrivals);
    }

    #[test]
    fn idle_slices_resets_on_arrival() {
        let power = presets::three_state_generic();
        let pm = AlwaysOn::new(&power);
        let mut sim = Simulator::new(
            power,
            presets::default_service(),
            WorkloadSpec::Trace {
                arrivals: vec![0, 0, 1, 0],
            }
            .build(),
            Box::new(pm),
            SimConfig::default(),
        )
        .unwrap();
        sim.step();
        sim.step();
        assert_eq!(sim.observation().idle_slices, 2);
        sim.step(); // arrival
        assert_eq!(sim.observation().idle_slices, 0);
        sim.step();
        assert_eq!(sim.observation().idle_slices, 1);
    }

    #[test]
    fn recorder_produces_windows() {
        let mut sim = sim_with(0.2, 3);
        sim.attach_recorder(100);
        sim.run(1000);
        let series = sim.take_series();
        assert_eq!(series.len(), 10);
        assert!(series.iter().all(|p| p.energy_per_slice > 0.0));
    }

    #[test]
    fn noise_perturbs_only_observation() {
        let power = presets::three_state_generic();
        let pm = AlwaysOn::new(&power);
        let mut sim = Simulator::new(
            power,
            presets::default_service(),
            WorkloadSpec::bernoulli(0.5).unwrap().build(),
            Box::new(pm),
            SimConfig {
                noise: ObservationNoise {
                    queue_misread_prob: 1.0,
                    idle_jitter: 3,
                },
                ..SimConfig::default()
            },
        )
        .unwrap();
        // Energy accounting must stay exact despite noise.
        let stats = sim.run(500);
        assert!((stats.total_energy - 500.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_service_takes_exact_slices() {
        // One arrival at slice 0; deterministic 3-slice service while
        // always-on: completion should land exactly at slice 2 (service
        // progresses during slices 0, 1, 2).
        let power = presets::three_state_generic();
        let pm = AlwaysOn::new(&power);
        let mut sim = Simulator::new(
            power,
            qdpm_device::ServiceModel::deterministic(3).unwrap(),
            WorkloadSpec::Trace {
                arrivals: vec![1, 0, 0, 0, 0],
            }
            .build(),
            Box::new(pm),
            SimConfig::default(),
        )
        .unwrap();
        let o0 = sim.step();
        assert_eq!(o0.completed, 0);
        let o1 = sim.step();
        assert_eq!(o1.completed, 0);
        let o2 = sim.step();
        assert_eq!(o2.completed, 1, "deterministic(3) completes on slice 3");
        assert_eq!(sim.stats().completed, 1);
        assert_eq!(sim.stats().total_wait, 2);
    }

    /// Records every observation the engine hands to a PM (shared handles,
    /// because the simulator owns the PM), acting like always-on.
    #[derive(Debug)]
    struct ObsProbe {
        target: qdpm_device::PowerStateId,
        decides: std::sync::Arc<std::sync::Mutex<Vec<Observation>>>,
        observes: std::sync::Arc<std::sync::Mutex<Vec<Observation>>>,
    }

    impl PowerManager for ObsProbe {
        fn decide(
            &mut self,
            obs: &Observation,
            _rng: &mut dyn rand::Rng,
        ) -> qdpm_device::PowerStateId {
            self.decides.lock().unwrap().push(*obs);
            self.target
        }

        fn observe(&mut self, _outcome: &StepOutcome, next_obs: &Observation) {
            self.observes.lock().unwrap().push(*next_obs);
        }

        fn name(&self) -> &str {
            "obs-probe"
        }
    }

    /// Regression for the F4 double-draw bug: under certain misread noise
    /// the observation a PM decides from must be the exact `next_obs` it
    /// received at the end of the preceding slice — not a fresh re-roll of
    /// the noise on the same true state.
    #[test]
    fn noisy_decide_obs_equals_preceding_next_obs() {
        let decides = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let observes = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let power = presets::three_state_generic();
        let probe = ObsProbe {
            target: power.highest_power_state(),
            decides: decides.clone(),
            observes: observes.clone(),
        };
        let mut sim = Simulator::new(
            power,
            presets::default_service(),
            WorkloadSpec::bernoulli(0.4).unwrap().build(),
            Box::new(probe),
            SimConfig {
                noise: ObservationNoise {
                    queue_misread_prob: 1.0,
                    idle_jitter: 2,
                },
                ..SimConfig::default()
            },
        )
        .unwrap();
        let steps = 200;
        for _ in 0..steps {
            sim.step();
        }
        let decides = decides.lock().unwrap();
        let observes = observes.lock().unwrap();
        assert_eq!(decides.len(), steps);
        assert_eq!(observes.len(), steps);
        for i in 1..steps {
            assert_eq!(
                decides[i],
                observes[i - 1],
                "slice {i}: decide must reuse the preceding observe's next_obs"
            );
        }
    }

    /// The hoisted specialized loops of `run` must be stream-identical to
    /// calling `step` slice by slice, in every (noise, recorder)
    /// configuration — stats and recorded series alike.
    #[test]
    fn run_matches_manual_steps_in_every_configuration() {
        for (misread, jitter) in [(0.0, 0), (0.35, 2)] {
            for with_recorder in [false, true] {
                let build = || {
                    let power = presets::three_state_generic();
                    let pm = qdpm_core::QDpmAgent::new(&power, qdpm_core::QDpmConfig::default())
                        .unwrap();
                    let mut sim = Simulator::new(
                        power,
                        presets::default_service(),
                        WorkloadSpec::bernoulli(0.2).unwrap().build(),
                        Box::new(pm),
                        SimConfig {
                            seed: 77,
                            noise: ObservationNoise {
                                queue_misread_prob: misread,
                                idle_jitter: jitter,
                            },
                            ..SimConfig::default()
                        },
                    )
                    .unwrap();
                    if with_recorder {
                        sim.attach_recorder(100);
                    }
                    sim
                };
                let mut via_run = build();
                let mut via_step = build();
                let run_stats = via_run.run(700);
                for _ in 0..700 {
                    via_step.step();
                }
                assert_eq!(
                    &run_stats,
                    via_step.stats(),
                    "noise=({misread},{jitter}) recorder={with_recorder}"
                );
                if with_recorder {
                    assert_eq!(via_run.take_series(), via_step.take_series());
                }
            }
        }
    }

    #[test]
    fn run_returns_stretch_stats() {
        let mut sim = sim_with(0.1, 5);
        let first = sim.run(100);
        let second = sim.run(100);
        assert_eq!(first.steps, 100);
        assert_eq!(second.steps, 100);
        assert_eq!(sim.stats().steps, 200);
    }

    /// Builds a simulator over a sparse looping trace (long sleepable gaps
    /// plus short ones around the break-even point) with the given policy
    /// and engine mode.
    fn trace_sim(pm: Box<dyn PowerManager>, mode: EngineMode) -> Simulator {
        let mut arrivals = vec![0u32; 64];
        arrivals[3] = 1;
        arrivals[5] = 2;
        arrivals[30] = 1;
        arrivals[33] = 1;
        arrivals[60] = 1;
        Simulator::new(
            presets::three_state_generic(),
            presets::default_service(),
            WorkloadSpec::Trace { arrivals }.build(),
            pm,
            SimConfig {
                seed: 11,
                mode,
                ..SimConfig::default()
            },
        )
        .unwrap()
    }

    /// Event skipping on a trace workload with deterministic policies must
    /// reproduce the per-slice metrics *exactly* (bit-for-bit f64 totals),
    /// transitions and timeouts included.
    #[test]
    fn event_skip_is_exact_on_traces_for_deterministic_policies() {
        type PmBuilder<'a> = Box<dyn Fn() -> Box<dyn PowerManager> + 'a>;
        let power = presets::three_state_generic();
        let builders: Vec<(&str, PmBuilder)> = vec![
            ("always-on", Box::new(|| Box::new(AlwaysOn::new(&power)))),
            (
                "greedy-off",
                Box::new(|| Box::new(crate::policies::GreedyOff::new(&power))),
            ),
            (
                "fixed-timeout",
                Box::new(|| Box::new(crate::policies::FixedTimeout::new(&power, 6))),
            ),
            (
                "adaptive-timeout",
                Box::new(|| Box::new(crate::policies::AdaptiveTimeout::new(&power))),
            ),
        ];
        for (name, build) in builders {
            let mut per = trace_sim(build(), EngineMode::PerSlice);
            let mut skip = trace_sim(build(), EngineMode::EventSkip);
            let a = per.run(5_000);
            let b = skip.run(5_000);
            assert_eq!(a, b, "{name}: stats must match exactly");
            assert_eq!(
                per.observation(),
                skip.observation(),
                "{name}: end state must match"
            );
            // A second stretch exercises stretches spanning run() calls.
            assert_eq!(per.run(777), skip.run(777), "{name}: second stretch");
        }
    }

    /// A zero-epsilon Q-DPM agent consumes no randomness, so event
    /// skipping must be metric-exact for it too (the learner's stay run
    /// replicates the update arithmetic bit for bit).
    #[test]
    fn event_skip_is_exact_for_greedy_q_dpm_on_traces() {
        let build = || {
            let power = presets::three_state_generic();
            let agent = qdpm_core::QDpmAgent::new(
                &power,
                qdpm_core::QDpmConfig {
                    exploration: qdpm_core::Exploration::EpsilonGreedy { epsilon: 0.0 },
                    ..qdpm_core::QDpmConfig::default()
                },
            )
            .unwrap();
            Box::new(agent) as Box<dyn PowerManager>
        };
        let mut per = trace_sim(build(), EngineMode::PerSlice);
        let mut skip = trace_sim(build(), EngineMode::EventSkip);
        assert_eq!(per.run(20_000), skip.run(20_000));
        assert_eq!(per.observation(), skip.observation());
    }

    /// With observation noise configured the event-skip engine falls back
    /// to per-slice stepping wholesale, which is stream-identical.
    #[test]
    fn event_skip_with_noise_is_stream_identical_fallback() {
        let build = |mode| {
            let power = presets::three_state_generic();
            let pm = qdpm_core::QDpmAgent::new(&power, qdpm_core::QDpmConfig::default()).unwrap();
            Simulator::new(
                power,
                presets::default_service(),
                WorkloadSpec::bernoulli(0.1).unwrap().build(),
                Box::new(pm),
                SimConfig {
                    seed: 3,
                    mode,
                    noise: ObservationNoise {
                        queue_misread_prob: 0.3,
                        idle_jitter: 1,
                    },
                    ..SimConfig::default()
                },
            )
            .unwrap()
        };
        let mut per = build(EngineMode::PerSlice);
        let mut skip = build(EngineMode::EventSkip);
        assert_eq!(per.run(3_000), skip.run(3_000));
    }

    /// A silent own-workload simulator driven purely by injected arrivals —
    /// the online fleet dispatch shape — must account them exactly, and
    /// identically in both engine modes.
    #[test]
    fn injected_arrivals_land_on_the_next_slice_in_both_modes() {
        let build = |mode| {
            let power = presets::three_state_generic();
            let pm = crate::policies::FixedTimeout::new(&power, 4);
            Simulator::new(
                power,
                presets::default_service(),
                Box::new(qdpm_workload::SparseTrace::new(vec![], 10_000).unwrap()),
                Box::new(pm),
                SimConfig {
                    seed: 9,
                    mode,
                    ..SimConfig::default()
                },
            )
            .unwrap()
        };
        let mut per = build(EngineMode::PerSlice);
        let mut skip = build(EngineMode::EventSkip);
        // Inject at irregular gaps; run the gap, inject, step the arrival
        // slice — exactly the online coordinator's drive pattern.
        for (gap, count) in [(0u64, 1u32), (7, 2), (1, 1), (40, 3), (2, 1)] {
            for sim in [&mut per, &mut skip] {
                sim.run(gap);
                sim.inject_arrivals(count);
                let out = sim.step();
                assert_eq!(out.arrivals, count, "injection lands on its slice");
            }
        }
        per.run(300);
        skip.run(300);
        assert_eq!(per.stats(), skip.stats());
        assert_eq!(per.observation(), skip.observation());
        assert_eq!(per.stats().arrivals, 8);
    }

    /// `run` under `EventSkip` must not fast-forward past arrivals that
    /// were injected before the call.
    #[test]
    fn event_skip_run_honours_pending_injection() {
        let power = presets::three_state_generic();
        let pm = crate::policies::GreedyOff::new(&power);
        let mut sim = Simulator::new(
            power,
            presets::default_service(),
            Box::new(qdpm_workload::SparseTrace::new(vec![], 1_000).unwrap()),
            Box::new(pm),
            SimConfig {
                mode: EngineMode::EventSkip,
                ..SimConfig::default()
            },
        )
        .unwrap();
        sim.inject_arrivals(2);
        let stats = sim.run(100);
        assert_eq!(stats.arrivals, 2);
        // The arrivals landed on the first slice of the run: they were
        // already queued (or served) rather than skipped over.
        assert_eq!(
            stats.completed + u64::from(sim.observation().queue_len as u32),
            2
        );
    }

    /// A checkpoint taken mid-run and restored into a freshly built
    /// simulator must continue bit-identically to never having stopped —
    /// learning agent, stochastic workload, both engine modes.
    #[test]
    fn save_load_resumes_bit_identically() {
        for mode in [EngineMode::PerSlice, EngineMode::EventSkip] {
            let build = || {
                let power = presets::three_state_generic();
                let pm =
                    qdpm_core::QDpmAgent::new(&power, qdpm_core::QDpmConfig::default()).unwrap();
                Simulator::new(
                    power,
                    presets::default_service(),
                    WorkloadSpec::bernoulli(0.08).unwrap().build(),
                    Box::new(pm),
                    SimConfig {
                        seed: 21,
                        mode,
                        ..SimConfig::default()
                    },
                )
                .unwrap()
            };
            let mut reference = build();
            let mut first = build();
            reference.run(1_500);
            first.run(1_500);
            let mut payload = StateWriter::new();
            first.save_state(&mut payload);
            let bytes = payload.into_bytes();
            let mut resumed = build();
            resumed.load_state(&mut StateReader::new(&bytes)).unwrap();
            let a = reference.run(1_500);
            let b = resumed.run(1_500);
            assert_eq!(a, b, "{mode:?}: resumed stretch diverged");
            assert_eq!(
                reference.stats().total_energy.to_bits(),
                resumed.stats().total_energy.to_bits(),
                "{mode:?}: energy must match to the bit"
            );
            assert_eq!(
                reference.stats().total_cost.to_bits(),
                resumed.stats().total_cost.to_bits(),
                "{mode:?}: cost must match to the bit"
            );
            assert_eq!(reference.observation(), resumed.observation(), "{mode:?}");
        }
    }

    /// With observation noise the carried corrupted view is part of the
    /// checkpoint: a restore mid-slice-boundary must replay the identical
    /// noisy stream.
    #[test]
    fn save_load_preserves_carried_noisy_observation() {
        let build = || {
            let power = presets::three_state_generic();
            let pm = qdpm_core::QDpmAgent::new(&power, qdpm_core::QDpmConfig::default()).unwrap();
            Simulator::new(
                power,
                presets::default_service(),
                WorkloadSpec::bernoulli(0.3).unwrap().build(),
                Box::new(pm),
                SimConfig {
                    seed: 5,
                    noise: ObservationNoise {
                        queue_misread_prob: 0.4,
                        idle_jitter: 2,
                    },
                    ..SimConfig::default()
                },
            )
            .unwrap()
        };
        let mut reference = build();
        let mut first = build();
        reference.run(701);
        first.run(701);
        let mut payload = StateWriter::new();
        first.save_state(&mut payload);
        let bytes = payload.into_bytes();
        let mut resumed = build();
        resumed.load_state(&mut StateReader::new(&bytes)).unwrap();
        assert_eq!(reference.run(900), resumed.run(900));
        assert_eq!(reference.stats(), resumed.stats());
    }

    /// Truncated or out-of-range payloads are rejected with an error, not
    /// a panic.
    #[test]
    fn load_rejects_truncated_and_corrupt_payloads() {
        let mut sim = sim_with(0.2, 13);
        sim.run(200);
        let mut payload = StateWriter::new();
        sim.save_state(&mut payload);
        let bytes = payload.into_bytes();
        // Truncation at any prefix must error cleanly.
        for cut in [0, 1, 8, bytes.len() / 2, bytes.len() - 1] {
            let mut target = sim_with(0.2, 13);
            assert!(
                target
                    .load_state(&mut StateReader::new(&bytes[..cut]))
                    .is_err(),
                "cut at {cut} must not load"
            );
        }
        // A device-mode tag from the future is rejected.
        let mut corrupt = bytes.clone();
        corrupt[0] = 0xff;
        let mut target = sim_with(0.2, 13);
        assert!(target.load_state(&mut StateReader::new(&corrupt)).is_err());
    }

    /// Event skipping on a sparse Bernoulli workload changes RNG draw
    /// order but not the law: long-run averages must agree closely for a
    /// learning agent.
    #[test]
    fn event_skip_sparse_bernoulli_averages_agree() {
        let build = |mode| {
            let power = presets::three_state_generic();
            let pm = qdpm_core::QDpmAgent::new(&power, qdpm_core::QDpmConfig::default()).unwrap();
            Simulator::new(
                power,
                presets::default_service(),
                WorkloadSpec::bernoulli(0.03).unwrap().build(),
                Box::new(pm),
                SimConfig {
                    seed: 19,
                    mode,
                    ..SimConfig::default()
                },
            )
            .unwrap()
        };
        let mut per = build(EngineMode::PerSlice);
        let mut skip = build(EngineMode::EventSkip);
        let a = per.run(120_000);
        let b = skip.run(120_000);
        let rel = |x: f64, y: f64| (x - y).abs() / x.abs().max(1e-12);
        assert!(
            rel(a.avg_power(), b.avg_power()) < 0.05,
            "avg power {} vs {}",
            a.avg_power(),
            b.avg_power()
        );
        assert!(
            rel(a.avg_cost(), b.avg_cost()) < 0.05,
            "avg cost {} vs {}",
            a.avg_cost(),
            b.avg_cost()
        );
        // Arrival laws agree (different draws, same Bernoulli rate).
        let (ra, rb) = (
            a.arrivals as f64 / a.steps as f64,
            b.arrivals as f64 / b.steps as f64,
        );
        assert!((ra - 0.03).abs() < 0.003, "per-slice rate {ra}");
        assert!((rb - 0.03).abs() < 0.003, "event-skip rate {rb}");
    }
}
