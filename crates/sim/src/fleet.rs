//! Fleet-scale simulation: N heterogeneous power-managed devices serving
//! one aggregate workload.
//!
//! The paper evaluates Q-DPM on a single service provider; a production
//! deployment manages *fleets* — thousands of disks, radios, or nodes
//! behind one request stream. This module composes the existing layers
//! into that shape:
//!
//! * a [`qdpm_workload::WorkloadDispatcher`] assigns every aggregate
//!   arrival to exactly one device — a strict partition, none invented,
//!   none lost;
//! * a [`FleetSim`] builds one [`Simulator`] per [`FleetMember`] (mixed
//!   device presets, mixed [`FleetPolicy`] power managers, per-device or
//!   shared Q-tables) and drives them over the horizon, sharded across
//!   worker threads via [`crate::parallel::run_indexed_mut`];
//! * a [`FleetStats`] folds the per-device [`RunStats`] — in device order,
//!   bit-for-bit — and adds fleet-level aggregates: per-device energy and
//!   delay percentiles and the end-of-run device-mode occupancy;
//! * a [`FleetGrid`] sweeps fleet size × dispatcher × workload the same
//!   way [`crate::ScenarioGrid`] sweeps single-device scenarios, with
//!   per-cell derived seeds.
//!
//! # Two execution shapes
//!
//! State-blind dispatchers ([`DispatchPolicy::is_state_blind`]) route from
//! dispatcher-internal state only, so the whole assignment is precomputed:
//! [`qdpm_workload::WorkloadDispatcher::split`] materializes one
//! [`qdpm_workload::SparseTrace`] per device and the per-device runs stay
//! embarrassingly parallel (one thread barrier for the whole run).
//!
//! State-aware dispatchers ([`DispatchPolicy::JoinShortestQueue`],
//! [`DispatchPolicy::SleepAware`]) — or any dispatcher under
//! [`FleetConfig::force_online`] — run the *online dispatch loop* instead:
//! the fleet is driven as one power-cap-less
//! [`crate::hierarchy::RackCoordinator`] rack, where at every aggregate
//! arrival slice the dispatcher reads live [`qdpm_workload::DeviceSnapshot`]s
//! (real queue depths, real power modes), routes the slice's arrivals, and
//! the chosen members absorb them via [`Simulator::inject_arrivals`].
//! Devices advance independently (and in parallel) across the arrival-free
//! gaps between routing points. For a state-blind dispatcher the online
//! loop reproduces the precomputed split *exactly* — same assignment, same
//! per-device streams, bit-identical [`FleetStats`].
//!
//! Both engine modes compose with both shapes: each member's simulator
//! runs under the fleet's [`EngineMode`], and because per-device arrivals
//! are randomness-free (sparse traces, or silent traces plus injection),
//! [`EngineMode::EventSkip`] is *exact* (bit-for-bit equal [`FleetStats`])
//! for every policy whose quiescent commitment consumes no randomness —
//! the fleet conformance suite (`crates/sim/tests/fleet_conformance.rs`)
//! pins this across policies and dispatchers.
//!
//! # Determinism
//!
//! A fleet run is a pure function of (members, aggregate workload,
//! config): the dispatch depends only on the aggregate stream and the
//! (deterministically) simulated device states, every device's simulator
//! seeds its own RNG streams from
//! [`crate::parallel::derive_cell_seed`]`(seed, device_index)`, and results are
//! collected in device order at any thread count. The online loop stays
//! thread-invariant because routing happens serially at arrival slices,
//! after all devices have reached that slice (a barrier per arrival
//! event). The one exception is sharing: a fleet containing
//! [`FleetPolicy::SharedQDpm`] members runs serially regardless of the
//! requested thread count, because concurrent updates to the one shared
//! Q-table would interleave in scheduling order.
//!
//! The clairvoyant [`FleetPolicy::Oracle`] / [`FleetPolicy::OraclePrewake`]
//! members need their device's full dispatched trace ahead of time, which
//! only the precomputed split can provide — building them in an online
//! fleet returns [`SimError::BadConfig`]
//! ([`FleetPolicy::all_online_exact`] is the online-safe population).
//!
//! # Example
//!
//! ```
//! use qdpm_device::presets;
//! use qdpm_sim::fleet::{FleetConfig, FleetMember, FleetPolicy, FleetSim};
//! use qdpm_sim::ScenarioWorkload;
//! use qdpm_workload::{DispatchPolicy, WorkloadSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let members: Vec<FleetMember> = (0..4)
//!     .map(|i| FleetMember {
//!         label: format!("hdd-{i}"),
//!         power: presets::three_state_generic(),
//!         service: presets::default_service(),
//!         policy: FleetPolicy::BreakEvenTimeout,
//!     })
//!     .collect();
//! let aggregate = ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(0.3)?);
//! let fleet = FleetSim::new(
//!     &members,
//!     &aggregate,
//!     &FleetConfig {
//!         horizon: 5_000,
//!         dispatch: DispatchPolicy::LeastLoaded,
//!         ..FleetConfig::default()
//!     },
//! )?;
//! let report = fleet.run(2);
//! assert_eq!(report.stats.devices, 4);
//! assert_eq!(report.stats.total.steps, 4 * 5_000);
//! # Ok(())
//! # }
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use qdpm_core::{
    Exploration, GenericQDpmAgent, PowerManager, QDpmAgent, QDpmConfig, QLearner, QosConfig,
    QosQDpmAgent, RewardWeights, SharedQLearner, StateEncoder,
};
use qdpm_device::{DeviceMode, PowerModel, PowerStateId, ServiceModel, Step};
use qdpm_workload::{
    CohortArrivals, DeadlineSpec, DeadlineStats, DispatchPolicy, FaultInjector, FaultPlan,
    SparseTrace, WorkloadDispatcher,
};

use crate::fleet_batch::{group_cohorts, CohortSim};
use crate::hierarchy::{drive_rack, RackCoordinator, RackSpec};
use crate::parallel::{derive_cell_seed, run_indexed_mut, ScenarioWorkload};
use crate::{policies, EngineMode, FaultStats, RunStats, SimConfig, SimError, Simulator};

/// Declarative power-management policy of one fleet member.
///
/// A fleet spec must be buildable for *any* member device and cloneable
/// across engine modes (the conformance suite builds the identical fleet
/// twice), so policies are described declaratively and instantiated by
/// [`FleetSim::new`] — the clairvoyant oracles against the member's own
/// dispatched trace, the learners from their configs.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetPolicy {
    /// [`policies::AlwaysOn`].
    AlwaysOn,
    /// [`policies::GreedyOff`].
    GreedyOff,
    /// [`policies::FixedTimeout::break_even`].
    BreakEvenTimeout,
    /// [`policies::FixedTimeout`] with an explicit timeout.
    FixedTimeout(u64),
    /// [`policies::AdaptiveTimeout`].
    AdaptiveTimeout,
    /// [`policies::Oracle`] built from the member's dispatched trace
    /// (reactive wake).
    Oracle,
    /// [`policies::Oracle`] with pre-waking.
    OraclePrewake,
    /// [`policies::ChaosMonkey`]: hostile fault injection (uniformly
    /// random commands every slice). Excluded from the engine-exact
    /// populations — it consumes policy randomness per slice.
    ChaosMonkey,
    /// A per-device [`QDpmAgent`] (its own Q-table).
    QDpm(QDpmConfig),
    /// A per-device QoS-constrained agent ([`QosQDpmAgent`]).
    QosQDpm(QosConfig),
    /// A Q-DPM agent learning into the fleet's *shared* Q-table. All
    /// shared members of a fleet must carry the identical config and
    /// identically-dimensioned devices (same encoder/action space); the
    /// first shared member creates the table. See the module notes on
    /// determinism: shared fleets run serially.
    SharedQDpm(QDpmConfig),
}

impl FleetPolicy {
    /// A frozen-exploration (`epsilon = 0`) Q-DPM config — the learner
    /// configuration whose event-skip commitments consume no randomness,
    /// making fleet runs engine-exact.
    #[must_use]
    pub fn frozen_q_dpm() -> FleetPolicy {
        FleetPolicy::QDpm(QDpmConfig {
            exploration: Exploration::EpsilonGreedy { epsilon: 0.0 },
            ..QDpmConfig::default()
        })
    }

    /// A frozen-exploration QoS-constrained config (see
    /// [`FleetPolicy::frozen_q_dpm`]).
    #[must_use]
    pub fn frozen_qos_q_dpm() -> FleetPolicy {
        FleetPolicy::QosQDpm(QosConfig {
            exploration: Exploration::EpsilonGreedy { epsilon: 0.0 },
            ..QosConfig::default()
        })
    }

    /// A frozen-exploration shared-table config (see
    /// [`FleetPolicy::frozen_q_dpm`]).
    #[must_use]
    pub fn frozen_shared_q_dpm() -> FleetPolicy {
        FleetPolicy::SharedQDpm(QDpmConfig {
            exploration: Exploration::EpsilonGreedy { epsilon: 0.0 },
            ..QDpmConfig::default()
        })
    }

    /// Every policy kind in a configuration whose event-skip commitments
    /// consume no randomness, so `PerSlice` and `EventSkip` fleets agree
    /// *exactly* — the population the conformance proptest samples from.
    #[must_use]
    pub fn all_exact() -> Vec<FleetPolicy> {
        vec![
            FleetPolicy::AlwaysOn,
            FleetPolicy::GreedyOff,
            FleetPolicy::BreakEvenTimeout,
            FleetPolicy::FixedTimeout(2),
            FleetPolicy::AdaptiveTimeout,
            FleetPolicy::Oracle,
            FleetPolicy::OraclePrewake,
            FleetPolicy::frozen_q_dpm(),
            FleetPolicy::frozen_qos_q_dpm(),
            FleetPolicy::frozen_shared_q_dpm(),
        ]
    }

    /// [`FleetPolicy::all_exact`] minus the clairvoyant oracles — the
    /// engine-exact policies that can also run under *online* dispatch,
    /// where no precomputed per-device trace exists for an oracle to read.
    #[must_use]
    pub fn all_online_exact() -> Vec<FleetPolicy> {
        FleetPolicy::all_exact()
            .into_iter()
            .filter(|p| !matches!(p, FleetPolicy::Oracle | FleetPolicy::OraclePrewake))
            .collect()
    }

    /// Short display name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FleetPolicy::AlwaysOn => "always-on",
            FleetPolicy::GreedyOff => "greedy-off",
            FleetPolicy::BreakEvenTimeout => "break-even-timeout",
            FleetPolicy::FixedTimeout(_) => "fixed-timeout",
            FleetPolicy::AdaptiveTimeout => "adaptive-timeout",
            FleetPolicy::Oracle => "oracle",
            FleetPolicy::OraclePrewake => "oracle-prewake",
            FleetPolicy::ChaosMonkey => "chaos-monkey",
            FleetPolicy::QDpm(_) => "q-dpm",
            FleetPolicy::QosQDpm(_) => "qos-q-dpm",
            FleetPolicy::SharedQDpm(_) => "shared-q-dpm",
        }
    }
}

/// One device of a fleet: a power model, its service process, and the
/// policy managing it.
#[derive(Debug, Clone)]
pub struct FleetMember {
    /// Report label (e.g. the preset name).
    pub label: String,
    /// Device power model.
    pub power: PowerModel,
    /// Service process.
    pub service: ServiceModel,
    /// Power-management policy.
    pub policy: FleetPolicy,
}

/// Fleet-wide simulation parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Queue capacity of every device.
    pub queue_cap: usize,
    /// Reward/cost weights shared by metrics and learners.
    pub weights: RewardWeights,
    /// Master seed: drives the aggregate workload stream and derives every
    /// device's independent simulator seed
    /// ([`derive_cell_seed`]`(seed, device_index)`).
    pub seed: u64,
    /// Engine mode every member's simulator runs under.
    pub engine_mode: EngineMode,
    /// How aggregate arrivals are assigned to devices.
    pub dispatch: DispatchPolicy,
    /// Slices each device simulates (the dispatch horizon).
    pub horizon: Step,
    /// Forces the online dispatch loop even for state-blind dispatchers
    /// (their default is the precomputed split; state-aware dispatchers
    /// always run online). The two shapes produce bit-identical results
    /// for state-blind dispatch — this knob exists so the conformance
    /// suite can pin that equivalence.
    pub force_online: bool,
    /// Runs homogeneous member groups on the batched structure-of-arrays
    /// cohort engine (see [`crate::fleet_batch`]). Only preplanned
    /// per-slice fleets batch; groups of ≥ 2 members agreeing on power
    /// model, service model, and a batchable policy become
    /// [`CohortSim`]s, everything else stays on the dynamic per-device
    /// path. Results are bit-identical either way — this knob (default
    /// `true`) exists for benchmarking and for the conformance suite to
    /// pin that equivalence.
    pub batch_cohorts: bool,
    /// Seeded fault injection across the fleet (default: none). The plan
    /// is materialized ahead of simulation from per-device
    /// SplitMix64-derived streams
    /// ([`FaultInjector::plan`]`(n_devices, horizon, seed)`), so
    /// fault-injected runs stay bit-exact across engine modes and thread
    /// counts. Devices with scheduled faults are excluded from batched
    /// cohorts (the structure-of-arrays engine has no fault axis) and run
    /// on the dynamic path instead.
    pub faults: Option<FaultInjector>,
    /// Deadline tagging applied by every member's simulator (default:
    /// none). Tagged fleets run on the dynamic per-device path — the
    /// batched cohort engine carries no deadline ledger, so members of a
    /// tagged fleet are excluded from cohorts exactly like faulted ones.
    pub deadline: Option<DeadlineSpec>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            queue_cap: 8,
            weights: RewardWeights::default(),
            seed: 42,
            engine_mode: EngineMode::PerSlice,
            dispatch: DispatchPolicy::RoundRobin,
            horizon: 50_000,
            force_online: false,
            batch_cohorts: true,
            faults: None,
            deadline: None,
        }
    }
}

/// The one shared Q-table of a fleet, created by its first
/// [`FleetPolicy::SharedQDpm`] member.
#[derive(Debug)]
pub(crate) struct SharedPool {
    learner: SharedQLearner,
    config: QDpmConfig,
    dims: (usize, usize),
}

/// Builds the boxed power manager for one member. `trace` is the member's
/// precomputed dispatched trace when the fleet dispatch is preplanned;
/// online fleets pass `None`, which makes the clairvoyant oracle policies
/// unbuildable (there is nothing for them to foresee).
pub(crate) fn build_policy(
    member: &FleetMember,
    trace: Option<&SparseTrace>,
    pool: &mut Option<SharedPool>,
) -> Result<Box<dyn PowerManager>, SimError> {
    let power = &member.power;
    let dense_trace = || {
        trace.map(SparseTrace::to_dense).ok_or_else(|| {
            SimError::BadConfig(format!(
                "{}: oracle policies need the precomputed dispatch trace — \
                 use a state-blind dispatcher without force_online",
                member.label
            ))
        })
    };
    Ok(match &member.policy {
        FleetPolicy::AlwaysOn => Box::new(policies::AlwaysOn::new(power)),
        FleetPolicy::GreedyOff => Box::new(policies::GreedyOff::new(power)),
        FleetPolicy::BreakEvenTimeout => Box::new(policies::FixedTimeout::break_even(power)),
        FleetPolicy::FixedTimeout(t) => Box::new(policies::FixedTimeout::new(power, *t)),
        FleetPolicy::AdaptiveTimeout => Box::new(policies::AdaptiveTimeout::new(power)),
        FleetPolicy::Oracle => Box::new(policies::Oracle::from_trace(power, &dense_trace()?)),
        FleetPolicy::OraclePrewake => {
            Box::new(policies::Oracle::from_trace(power, &dense_trace()?).with_prewake())
        }
        FleetPolicy::ChaosMonkey => Box::new(policies::ChaosMonkey::new(power)),
        FleetPolicy::QDpm(config) => Box::new(QDpmAgent::new(power, config.clone())?),
        FleetPolicy::QosQDpm(config) => Box::new(QosQDpmAgent::new(power, config.clone())?),
        FleetPolicy::SharedQDpm(config) => {
            let encoder = config.encoder_for(power)?;
            let dims = (encoder.n_states(), power.n_states());
            let pool = match pool {
                Some(existing) => {
                    if existing.dims != dims {
                        return Err(SimError::BadConfig(format!(
                            "shared-Q-table fleet members must agree on table dimensions: \
                             {:?} vs {dims:?} ({})",
                            existing.dims, member.label
                        )));
                    }
                    if existing.config != *config {
                        return Err(SimError::BadConfig(format!(
                            "shared-Q-table fleet members must carry identical configs \
                             ({} deviates)",
                            member.label
                        )));
                    }
                    existing
                }
                None => {
                    let learner = QLearner::new(
                        dims.0,
                        dims.1,
                        config.discount,
                        config.learning_rate,
                        config.exploration,
                    )?;
                    pool.insert(SharedPool {
                        learner: SharedQLearner::new(learner),
                        config: config.clone(),
                        dims,
                    })
                }
            };
            Box::new(
                GenericQDpmAgent::with_learner(power, config, pool.learner.handle())?
                    .with_name("shared-q-dpm"),
            )
        }
    })
}

/// Draws `horizon` slices of the aggregate workload with the fleet's own
/// seed and returns the nonzero arrival events as `(slice, count)`, in
/// slice order.
///
/// This is the *one* sampling of the aggregate stream: both execution
/// shapes consume the identical per-slice draw order
/// (`StdRng::seed_from_u64(seed)` + one [`next_arrivals`] call per slice),
/// so a preplanned split and an online run of the same fleet see the same
/// arrivals at the same slices.
///
/// [`next_arrivals`]: qdpm_workload::RequestGenerator::next_arrivals
pub(crate) fn materialize_events(
    aggregate: &ScenarioWorkload,
    seed: u64,
    horizon: Step,
) -> Result<Vec<(Step, u32)>, SimError> {
    let mut generator = aggregate.build()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::new();
    for slice in 0..horizon {
        let count = generator.next_arrivals(&mut rng);
        if count > 0 {
            events.push((slice, count));
        }
    }
    Ok(events)
}

/// Validates and materializes the fleet's fault plan (empty when no
/// injector is configured). Both execution shapes call this with the same
/// `(config, n_devices)`, so preplanned and online runs of the same fleet
/// see the identical fault schedule.
pub(crate) fn plan_faults(config: &FleetConfig, n_devices: usize) -> Result<FaultPlan, SimError> {
    match &config.faults {
        None => Ok(FaultPlan::empty(n_devices)),
        Some(injector) => {
            injector
                .validate()
                .map_err(|e| SimError::BadConfig(format!("fault injector: {e}")))?;
            Ok(injector.plan(n_devices, config.horizon, config.seed))
        }
    }
}

/// Aggregate statistics of a fleet run.
///
/// `total` is the left fold of the per-device [`RunStats`] *in device
/// order* via [`RunStats::merge`] — the defined aggregation order, so the
/// f64 totals are reproducible bit-for-bit at any thread count (the fleet
/// conservation tests pin `total` against a manual fold). The percentile
/// fields are nearest-rank percentiles over per-device values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Number of devices.
    pub devices: usize,
    /// Fold of every device's stats (totals across the fleet).
    pub total: RunStats,
    /// Mean per-device total energy.
    pub mean_energy: f64,
    /// Median per-device total energy (nearest rank).
    pub energy_p50: f64,
    /// 90th-percentile per-device total energy.
    pub energy_p90: f64,
    /// 99th-percentile per-device total energy.
    pub energy_p99: f64,
    /// Fleet-wide mean waiting time of completed requests, in slices.
    pub mean_wait: f64,
    /// Median per-device mean wait.
    pub wait_p50: f64,
    /// 90th-percentile per-device mean wait.
    pub wait_p90: f64,
    /// 99th-percentile per-device mean wait.
    pub wait_p99: f64,
    /// End-of-run device-mode occupancy: fraction of devices resident in
    /// each power-state index (indices beyond a device's model count it
    /// as never occupied). Sums with `transitioning` to 1.
    pub mode_occupancy: Vec<f64>,
    /// Fraction of devices mid-transition at the end of the run.
    pub transitioning: f64,
    /// Availability and failure-handling accounting (all-zero with empty
    /// per-device downtime for fault-free runs).
    pub availability: AvailabilityStats,
    /// Fleet-wide deadline ledger, merged across members in device order
    /// (all zeros when the fleet's workload is untagged).
    pub deadline: DeadlineStats,
}

/// Availability and failure-handling accounting of a fleet run: what the
/// fault clocks did to each device, and what the coordination layer did
/// about it. Preplanned fleets fill only the device-side counters; the
/// retry and shed counters are moved by the online coordinator's
/// failure-aware dispatch.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AvailabilityStats {
    /// Fault events applied across the fleet.
    pub faults_injected: u64,
    /// Per-device slices spent down, in device order (empty when no fleet
    /// path filled it, e.g. intermediate aggregates).
    pub downtime_slices: Vec<u64>,
    /// Requests lost from device queues at crash onsets (not harvested for
    /// retry by any coordinator).
    pub queue_lost: u64,
    /// Stranded arrivals harvested into the retry queue.
    pub retries_enqueued: u64,
    /// Retried arrivals successfully re-dispatched to a healthy device.
    pub redispatched: u64,
    /// Retried arrivals still waiting for re-dispatch at the end of the
    /// run.
    pub retry_pending: u64,
    /// Arrivals shed because every device was down
    /// (`ShedReason::NoHealthyDevice`).
    pub shed_no_healthy: u64,
    /// Arrivals shed after exhausting the retry budget
    /// (`ShedReason::RetryBudgetExhausted`).
    pub shed_retry_exhausted: u64,
}

impl AvailabilityStats {
    /// Total downtime slices across the fleet.
    #[must_use]
    pub fn total_downtime(&self) -> u64 {
        self.downtime_slices.iter().sum()
    }

    /// Devices that spent at least one slice down.
    #[must_use]
    pub fn devices_hit(&self) -> usize {
        self.downtime_slices.iter().filter(|&&d| d > 0).count()
    }

    /// All arrivals shed by the coordination layer, any reason.
    #[must_use]
    pub fn total_shed(&self) -> u64 {
        self.shed_no_healthy + self.shed_retry_exhausted
    }

    /// Builds the device-side half from per-device [`FaultStats`] (the
    /// retry/shed counters stay zero; coordinators overwrite them).
    #[must_use]
    pub fn from_device_stats(per_device: &[FaultStats]) -> Self {
        let mut out = AvailabilityStats {
            downtime_slices: per_device.iter().map(|f| f.downtime_slices).collect(),
            ..AvailabilityStats::default()
        };
        for f in per_device {
            out.faults_injected += f.faults_injected;
            out.queue_lost += f.queue_lost;
        }
        out
    }
}

/// Nearest-rank percentile of a sorted sample. `p` must lie in
/// `[0, 100]`: out-of-domain values are a caller bug (caught by a debug
/// assertion) and are clamped to the domain in release builds rather than
/// silently indexing as if the rank formula extrapolated.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(
        (0.0..=100.0).contains(&p),
        "percentile {p} outside [0, 100]"
    );
    let p = p.clamp(0.0, 100.0);
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl FleetStats {
    /// Aggregates per-device stats and final modes (`n_states` is the
    /// widest member model's state count, sizing `mode_occupancy`).
    #[must_use]
    pub fn aggregate(per_device: &[RunStats], final_modes: &[DeviceMode], n_states: usize) -> Self {
        assert_eq!(per_device.len(), final_modes.len());
        let devices = per_device.len();
        let mut total = RunStats::new();
        for stats in per_device {
            total.merge(stats);
        }
        let mut energies: Vec<f64> = per_device.iter().map(|s| s.total_energy).collect();
        energies.sort_by(f64::total_cmp);
        let mut waits: Vec<f64> = per_device.iter().map(RunStats::mean_wait).collect();
        waits.sort_by(f64::total_cmp);
        let mut mode_occupancy = vec![0.0; n_states];
        let mut transitioning = 0.0;
        let share = if devices == 0 {
            0.0
        } else {
            1.0 / devices as f64
        };
        for mode in final_modes {
            match mode {
                DeviceMode::Operational(s) => mode_occupancy[s.index()] += share,
                DeviceMode::Transitioning { .. } => transitioning += share,
            }
        }
        FleetStats {
            devices,
            mean_energy: if devices == 0 {
                0.0
            } else {
                total.total_energy / devices as f64
            },
            energy_p50: percentile(&energies, 50.0),
            energy_p90: percentile(&energies, 90.0),
            energy_p99: percentile(&energies, 99.0),
            mean_wait: if total.completed == 0 {
                0.0
            } else {
                total.total_wait as f64 / total.completed as f64
            },
            wait_p50: percentile(&waits, 50.0),
            wait_p90: percentile(&waits, 90.0),
            wait_p99: percentile(&waits, 99.0),
            mode_occupancy,
            transitioning,
            total,
            availability: AvailabilityStats::default(),
            deadline: DeadlineStats::default(),
        }
    }
}

/// Everything a finished fleet run reports.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Member labels, in device order.
    pub labels: Vec<String>,
    /// Per-device run statistics, in device order.
    pub per_device: Vec<RunStats>,
    /// Each device's mode at the end of the run, in device order.
    pub final_modes: Vec<DeviceMode>,
    /// The fleet aggregate.
    pub stats: FleetStats,
}

/// One independently runnable execution unit of a preplanned fleet:
/// either a single device on the dynamic per-device path or a whole
/// homogeneous cohort on the batched structure-of-arrays path. Units own
/// disjoint per-device RNG streams and statistics, so any assignment of
/// units to worker threads produces identical results.
#[derive(Debug)]
enum BatchUnit {
    /// One device, dynamic path: boxed policy, boxed trace generator.
    Dynamic {
        /// Global device index.
        index: usize,
        /// The device's simulator (boxed: the fault clock widened
        /// `Simulator` past the cohort variant, and slim units pack the
        /// work list tighter for the thread fan-out).
        sim: Box<Simulator>,
    },
    /// A homogeneous cohort, batched path (boxed for the same reason).
    Cohort(Box<CohortSim>),
}

/// How a constructed fleet will execute (see the module notes on the two
/// execution shapes).
#[derive(Debug)]
enum FleetInner {
    /// State-blind dispatch, precomputed: devices run independently
    /// end-to-end, singly or batched into homogeneous cohorts.
    Preplanned {
        units: Vec<BatchUnit>,
        labels: Vec<String>,
        n_states: usize,
    },
    /// Online dispatch: a cap-less rack routed live at every aggregate
    /// arrival event. Boxed: a rack (fault barriers, retry queue, budget
    /// plumbing) dwarfs the preplanned variant's three thin vecs.
    Online {
        rack: Box<RackCoordinator>,
        events: Vec<(Step, u32)>,
    },
}

/// A fleet of per-device simulators sharing one dispatched workload,
/// ready to run. See the [module docs](self) for the full picture.
#[derive(Debug)]
pub struct FleetSim {
    inner: FleetInner,
    devices: usize,
    horizon: Step,
    has_shared: bool,
    aggregate_arrivals: u64,
}

impl FleetSim {
    /// Assembles a fleet: draws `config.horizon` slices of the aggregate
    /// workload and builds one seeded simulator per member. State-blind
    /// dispatchers partition the stream ahead of time; state-aware
    /// dispatchers (or [`FleetConfig::force_online`]) set up the online
    /// dispatch loop instead.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for an empty member list, invalid aggregate
    /// workloads, inconsistent shared-table members, clairvoyant oracle
    /// members in an online fleet, or invalid simulator parameters.
    pub fn new(
        members: &[FleetMember],
        aggregate: &ScenarioWorkload,
        config: &FleetConfig,
    ) -> Result<Self, SimError> {
        if members.is_empty() {
            return Err(SimError::BadConfig(
                "a fleet needs at least one member".to_string(),
            ));
        }

        if config.force_online || !config.dispatch.is_state_blind() {
            let events = materialize_events(aggregate, config.seed, config.horizon)?;
            let aggregate_arrivals = events.iter().map(|&(_, c)| u64::from(c)).sum();
            let spec = RackSpec {
                label: "fleet".to_string(),
                members: members.to_vec(),
                power_cap: None,
            };
            let rack = RackCoordinator::new(&spec, config)?;
            return Ok(FleetSim {
                devices: members.len(),
                has_shared: rack.has_shared_table(),
                inner: FleetInner::Online {
                    rack: Box::new(rack),
                    events,
                },
                horizon: config.horizon,
                aggregate_arrivals,
            });
        }

        let fault_plan = plan_faults(config, members.len())?;

        let mut generator = aggregate.build()?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut dispatcher = WorkloadDispatcher::new(config.dispatch, members.len())?;
        // Homogeneous groups of ≥ 2 batchable members take the batched
        // cohort path; the dispatcher scatters the identical partition
        // either way, so batched and dynamic runs see the same arrivals.
        // Members with scheduled faults are excluded — the batched engine
        // has no fault clock — and fall back to the dynamic path, keeping
        // faulted runs bit-identical whether or not batching is on.
        let mut groups = if config.batch_cohorts
            && config.engine_mode == EngineMode::PerSlice
            && config.deadline.is_none()
        {
            group_cohorts(members)
        } else {
            Vec::new()
        };
        for group in &mut groups {
            group.retain(|&i| fault_plan.device(i).is_empty());
        }
        groups.retain(|g| g.len() >= 2);
        let grouped =
            dispatcher.split_grouped(generator.as_mut(), &mut rng, config.horizon, &groups);
        let aggregate_arrivals = grouped
            .cohorts
            .iter()
            .map(CohortArrivals::total_arrivals)
            .sum::<u64>()
            + grouped
                .dynamic
                .iter()
                .map(|(_, t)| t.total_arrivals())
                .sum::<u64>();

        let mut pool: Option<SharedPool> = None;
        let mut units = Vec::with_capacity(grouped.dynamic.len() + grouped.cohorts.len());
        for (index, trace) in grouped.dynamic {
            let member = &members[index];
            let pm = build_policy(member, Some(&trace), &mut pool)?;
            let sim_config = SimConfig {
                queue_cap: config.queue_cap,
                weights: config.weights,
                seed: derive_cell_seed(config.seed, index as u64),
                expose_sr_mode: false,
                noise: crate::ObservationNoise::none(),
                mode: config.engine_mode,
                deadline: config.deadline,
            };
            let mut sim = Simulator::new(
                member.power.clone(),
                member.service,
                Box::new(trace),
                pm,
                sim_config,
            )?;
            let schedule = fault_plan.device(index);
            if !schedule.is_empty() {
                sim.set_fault_schedule(schedule.to_vec());
            }
            units.push(BatchUnit::Dynamic {
                index,
                sim: Box::new(sim),
            });
        }
        for (group, arrivals) in groups.iter().zip(grouped.cohorts) {
            units.push(BatchUnit::Cohort(Box::new(CohortSim::new(
                &members[group[0]],
                group.clone(),
                arrivals,
                config,
            )?)));
        }
        Ok(FleetSim {
            devices: members.len(),
            inner: FleetInner::Preplanned {
                units,
                labels: members.iter().map(|m| m.label.clone()).collect(),
                n_states: members
                    .iter()
                    .map(|m| m.power.n_states())
                    .max()
                    .unwrap_or(0),
            },
            horizon: config.horizon,
            has_shared: pool.is_some(),
            aggregate_arrivals,
        })
    }

    /// Number of devices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.devices
    }

    /// Whether the fleet has no devices (never true for a constructed
    /// fleet).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.devices == 0
    }

    /// Total arrivals the dispatcher assigned across the horizon — by the
    /// partition property, exactly the aggregate stream's arrivals (the
    /// conservation tests compare this against the summed per-device
    /// [`RunStats::arrivals`]).
    #[must_use]
    pub fn dispatched_arrivals(&self) -> u64 {
        self.aggregate_arrivals
    }

    /// Whether this fleet dispatches online (live routing at every
    /// aggregate arrival event) rather than from a precomputed split.
    #[must_use]
    pub fn is_online(&self) -> bool {
        matches!(self.inner, FleetInner::Online { .. })
    }

    /// Whether this fleet pools experience in a shared Q-table (and will
    /// therefore run serially at any requested thread count).
    #[must_use]
    pub fn has_shared_table(&self) -> bool {
        self.has_shared
    }

    /// Number of homogeneous cohorts running on the batched
    /// structure-of-arrays path (0 for online fleets, fleets built with
    /// [`FleetConfig::batch_cohorts`] off, or fleets with no group of ≥ 2
    /// identical batchable members).
    #[must_use]
    pub fn batched_cohorts(&self) -> usize {
        match &self.inner {
            FleetInner::Preplanned { units, .. } => units
                .iter()
                .filter(|u| matches!(u, BatchUnit::Cohort(_)))
                .count(),
            FleetInner::Online { .. } => 0,
        }
    }

    /// Runs every device for the dispatch horizon on up to `threads`
    /// workers and aggregates the fleet statistics. Results are identical
    /// at any thread count; fleets with a shared Q-table run serially
    /// (see the module notes on determinism).
    #[must_use]
    pub fn run(self, threads: usize) -> FleetReport {
        let threads = if self.has_shared { 1 } else { threads };
        let horizon = self.horizon;
        let devices = self.devices;
        match self.inner {
            FleetInner::Preplanned {
                mut units,
                labels,
                n_states,
            } => {
                let results: Vec<Vec<(usize, RunStats, DeviceMode)>> =
                    run_indexed_mut(&mut units, threads, |_, unit| match unit {
                        BatchUnit::Dynamic { index, sim } => {
                            let stats = sim.run(horizon);
                            vec![(*index, stats, sim.observation().device_mode)]
                        }
                        BatchUnit::Cohort(cohort) => cohort.run(horizon),
                    });
                // Scatter unit results back into global device order; the
                // units partition the fleet, so every slot is written
                // exactly once.
                let mut per_device = vec![RunStats::new(); devices];
                let mut final_modes =
                    vec![DeviceMode::Operational(PowerStateId::from_index(0)); devices];
                for (index, stats, mode) in results.into_iter().flatten() {
                    per_device[index] = stats;
                    final_modes[index] = mode;
                }
                // Units are driven in place, so fault accounting is read
                // back after the run (cohort members are fault-free by
                // construction — their slots stay zero).
                let mut fault_stats = vec![FaultStats::default(); devices];
                let mut deadline_stats = vec![DeadlineStats::default(); devices];
                for unit in &units {
                    if let BatchUnit::Dynamic { index, sim } = unit {
                        fault_stats[*index] = *sim.fault_stats();
                        deadline_stats[*index] = *sim.deadline_stats();
                    }
                }
                let mut stats = FleetStats::aggregate(&per_device, &final_modes, n_states);
                stats.availability = AvailabilityStats::from_device_stats(&fault_stats);
                // Merge in device order (cohort members are untagged by
                // construction — their slots stay zero).
                for d in &deadline_stats {
                    stats.deadline.merge(d);
                }
                FleetReport {
                    labels,
                    per_device,
                    final_modes,
                    stats,
                }
            }
            FleetInner::Online { mut rack, events } => {
                drive_rack(&mut rack, &events, horizon, threads);
                rack.report().fleet
            }
        }
    }
}

/// Shared parameters of a [`FleetGrid`]: the member templates cycled
/// across each cell's devices plus the per-cell simulation knobs.
#[derive(Debug, Clone)]
pub struct FleetGridParams {
    /// Device templates, cycled across a cell's devices
    /// (`device_mix[i % len]` is device `i`).
    pub device_mix: Vec<(String, PowerModel, ServiceModel)>,
    /// Policy templates, cycled across a cell's devices.
    pub policy_mix: Vec<FleetPolicy>,
    /// Queue capacity of every device.
    pub queue_cap: usize,
    /// Reward/cost weights.
    pub weights: RewardWeights,
    /// Slices each device simulates.
    pub horizon: Step,
    /// Master seed; each cell receives
    /// [`derive_cell_seed`]`(master_seed, index)`.
    pub master_seed: u64,
    /// Engine mode of every cell.
    pub engine_mode: EngineMode,
}

impl Default for FleetGridParams {
    fn default() -> Self {
        FleetGridParams {
            device_mix: vec![(
                "three-state".to_string(),
                qdpm_device::presets::three_state_generic(),
                qdpm_device::presets::default_service(),
            )],
            policy_mix: vec![FleetPolicy::BreakEvenTimeout],
            queue_cap: 8,
            weights: RewardWeights::default(),
            horizon: 50_000,
            master_seed: 42,
            engine_mode: EngineMode::PerSlice,
        }
    }
}

/// One fully-specified fleet experiment cell: everything needed to build
/// and run one fleet, independently of every other cell.
#[derive(Debug, Clone)]
pub struct FleetCell {
    /// Workload label (report label).
    pub workload_label: String,
    /// Aggregate workload of this cell.
    pub workload: ScenarioWorkload,
    /// Fleet size (devices).
    pub size: usize,
    /// Dispatch policy.
    pub dispatch: DispatchPolicy,
    /// Member templates and simulation knobs.
    pub params: FleetGridParams,
    /// The cell's independent derived seed.
    pub seed: u64,
    /// Flat cell index in the grid (row-major).
    pub index: usize,
}

impl FleetCell {
    /// The cell's member list: the parameter mixes cycled across `size`
    /// devices.
    #[must_use]
    pub fn members(&self) -> Vec<FleetMember> {
        (0..self.size)
            .map(|i| {
                let (label, power, service) =
                    &self.params.device_mix[i % self.params.device_mix.len()];
                FleetMember {
                    label: format!("{label}-{i}"),
                    power: power.clone(),
                    service: *service,
                    policy: self.params.policy_mix[i % self.params.policy_mix.len()].clone(),
                }
            })
            .collect()
    }

    /// Builds the cell's fleet.
    ///
    /// # Errors
    ///
    /// Propagates [`FleetSim::new`] errors.
    pub fn build(&self) -> Result<FleetSim, SimError> {
        FleetSim::new(
            &self.members(),
            &self.workload,
            &FleetConfig {
                queue_cap: self.params.queue_cap,
                weights: self.params.weights,
                seed: self.seed,
                engine_mode: self.params.engine_mode,
                dispatch: self.dispatch,
                horizon: self.params.horizon,
                force_online: false,
                batch_cohorts: true,
                faults: None,
                deadline: None,
            },
        )
    }

    /// Builds and runs the cell's fleet on up to `threads` workers.
    ///
    /// # Errors
    ///
    /// Propagates [`FleetSim::new`] errors.
    pub fn run(&self, threads: usize) -> Result<FleetReport, SimError> {
        Ok(self.build()?.run(threads))
    }
}

/// An ordered collection of [`FleetCell`]s with deterministic indices and
/// per-cell derived seeds — the fleet analog of [`crate::ScenarioGrid`].
#[derive(Debug, Clone, Default)]
pub struct FleetGrid {
    cells: Vec<FleetCell>,
}

impl FleetGrid {
    /// The full cartesian grid size-major × dispatcher × workload, in
    /// row-major order, each cell seeded with
    /// [`derive_cell_seed`]`(params.master_seed, index)`.
    #[must_use]
    pub fn cartesian(
        sizes: &[usize],
        dispatchers: &[DispatchPolicy],
        workloads: &[(String, ScenarioWorkload)],
        params: &FleetGridParams,
    ) -> Self {
        let mut cells = Vec::with_capacity(sizes.len() * dispatchers.len() * workloads.len());
        let mut index = 0usize;
        for &size in sizes {
            for &dispatch in dispatchers {
                for (workload_label, workload) in workloads {
                    cells.push(FleetCell {
                        workload_label: workload_label.clone(),
                        workload: workload.clone(),
                        size,
                        dispatch,
                        params: params.clone(),
                        seed: derive_cell_seed(params.master_seed, index as u64),
                        index,
                    });
                    index += 1;
                }
            }
        }
        FleetGrid { cells }
    }

    /// The cells, in index order.
    #[must_use]
    pub fn cells(&self) -> &[FleetCell] {
        &self.cells
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdpm_device::presets;
    use qdpm_workload::WorkloadSpec;

    fn bernoulli(p: f64) -> ScenarioWorkload {
        ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(p).unwrap())
    }

    fn uniform_fleet(n: usize, policy: FleetPolicy) -> Vec<FleetMember> {
        (0..n)
            .map(|i| FleetMember {
                label: format!("dev-{i}"),
                power: presets::three_state_generic(),
                service: presets::default_service(),
                policy: policy.clone(),
            })
            .collect()
    }

    #[test]
    fn empty_fleet_rejected() {
        let err = FleetSim::new(&[], &bernoulli(0.1), &FleetConfig::default()).unwrap_err();
        assert!(matches!(err, SimError::BadConfig(_)));
    }

    #[test]
    fn fleet_runs_all_devices_for_the_horizon() {
        let members = uniform_fleet(5, FleetPolicy::BreakEvenTimeout);
        let config = FleetConfig {
            horizon: 3_000,
            ..FleetConfig::default()
        };
        let report = FleetSim::new(&members, &bernoulli(0.2), &config)
            .unwrap()
            .run(2);
        assert_eq!(report.per_device.len(), 5);
        assert!(report.per_device.iter().all(|s| s.steps == 3_000));
        assert_eq!(report.stats.total.steps, 5 * 3_000);
        assert_eq!(report.labels[3], "dev-3");
    }

    #[test]
    fn fleet_total_arrivals_match_dispatched() {
        let members = uniform_fleet(4, FleetPolicy::GreedyOff);
        let config = FleetConfig {
            horizon: 5_000,
            dispatch: DispatchPolicy::LeastLoaded,
            ..FleetConfig::default()
        };
        let fleet = FleetSim::new(&members, &bernoulli(0.35), &config).unwrap();
        let dispatched = fleet.dispatched_arrivals();
        assert!(dispatched > 0);
        let report = fleet.run(1);
        assert_eq!(report.stats.total.arrivals, dispatched);
    }

    #[test]
    fn fleet_is_thread_count_invariant() {
        let members = uniform_fleet(7, FleetPolicy::frozen_q_dpm());
        let config = FleetConfig {
            horizon: 2_000,
            ..FleetConfig::default()
        };
        let build = || FleetSim::new(&members, &bernoulli(0.3), &config).unwrap();
        let serial = build().run(1);
        for threads in [2, 4, 8] {
            assert_eq!(serial, build().run(threads), "threads={threads}");
        }
    }

    #[test]
    fn shared_table_fleet_pools_experience_and_forces_serial() {
        let members = uniform_fleet(3, FleetPolicy::frozen_shared_q_dpm());
        let config = FleetConfig {
            horizon: 2_000,
            ..FleetConfig::default()
        };
        let fleet = FleetSim::new(&members, &bernoulli(0.3), &config).unwrap();
        assert!(fleet.has_shared_table());
        // Requesting many threads must still be deterministic (serial).
        let a = FleetSim::new(&members, &bernoulli(0.3), &config)
            .unwrap()
            .run(8);
        let b = fleet.run(1);
        assert_eq!(a, b);
    }

    #[test]
    fn shared_table_dimension_mismatch_is_rejected() {
        let mut members = uniform_fleet(2, FleetPolicy::frozen_shared_q_dpm());
        members[1].power = presets::ibm_hdd(); // 4 states vs 3
        let err = FleetSim::new(&members, &bernoulli(0.1), &FleetConfig::default()).unwrap_err();
        assert!(matches!(err, SimError::BadConfig(_)));
    }

    #[test]
    fn shared_table_config_mismatch_is_rejected() {
        let mut members = uniform_fleet(2, FleetPolicy::frozen_shared_q_dpm());
        members[1].policy = FleetPolicy::SharedQDpm(QDpmConfig::default());
        let err = FleetSim::new(&members, &bernoulli(0.1), &FleetConfig::default()).unwrap_err();
        assert!(matches!(err, SimError::BadConfig(_)));
    }

    #[test]
    fn mixed_fleet_builds_every_policy_kind() {
        let policies = FleetPolicy::all_exact();
        assert!(policies.len() >= 9, "conformance gate needs >= 9 policies");
        let members: Vec<FleetMember> = policies
            .iter()
            .enumerate()
            .map(|(i, policy)| FleetMember {
                label: format!("{}-{i}", policy.name()),
                power: presets::three_state_generic(),
                service: presets::default_service(),
                policy: policy.clone(),
            })
            .collect();
        let config = FleetConfig {
            horizon: 1_000,
            ..FleetConfig::default()
        };
        let report = FleetSim::new(&members, &bernoulli(0.4), &config)
            .unwrap()
            .run(2);
        assert_eq!(report.per_device.len(), policies.len());
    }

    #[test]
    fn fleet_stats_percentiles_and_occupancy() {
        let mk = |energy: f64| {
            let mut s = RunStats::new();
            s.steps = 10;
            s.total_energy = energy;
            s
        };
        let per_device: Vec<RunStats> = (1..=10).map(|i| mk(i as f64)).collect();
        let active = presets::three_state_generic().highest_power_state();
        let modes: Vec<DeviceMode> = (0..10)
            .map(|i| {
                if i < 5 {
                    DeviceMode::Operational(active)
                } else {
                    DeviceMode::Transitioning {
                        from: active,
                        to: active,
                        remaining: 1,
                    }
                }
            })
            .collect();
        let stats = FleetStats::aggregate(&per_device, &modes, 3);
        assert_eq!(stats.devices, 10);
        assert!((stats.total.total_energy - 55.0).abs() < 1e-12);
        assert!((stats.mean_energy - 5.5).abs() < 1e-12);
        assert_eq!(stats.energy_p50, 5.0);
        assert_eq!(stats.energy_p90, 9.0);
        assert_eq!(stats.energy_p99, 10.0);
        assert!((stats.mode_occupancy[active.index()] - 0.5).abs() < 1e-12);
        assert!((stats.transitioning - 0.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_nearest_rank_edges() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 0.0), 7.0);
        assert_eq!(percentile(&[7.0], 100.0), 7.0);
        assert_eq!(percentile(&[1.0, 2.0], 50.0), 1.0);
        assert_eq!(percentile(&[1.0, 2.0], 51.0), 2.0);
        // Exact domain boundaries are valid, not off-by-one.
        assert_eq!(percentile(&[1.0, 2.0, 3.0], 0.0), 1.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0], 100.0), 3.0);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "outside [0, 100]"))]
    fn percentile_rejects_out_of_domain_p() {
        // Debug builds assert; release builds clamp to the domain edges
        // instead of indexing past the sample.
        assert_eq!(percentile(&[1.0, 2.0, 3.0], 250.0), 3.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0], -10.0), 1.0);
    }

    #[test]
    fn fleet_grid_shape_order_and_seeds() {
        let params = FleetGridParams {
            horizon: 100,
            ..FleetGridParams::default()
        };
        let grid = FleetGrid::cartesian(
            &[2, 8],
            &DispatchPolicy::all(),
            &[("bern".to_string(), bernoulli(0.2))],
            &params,
        );
        assert_eq!(grid.len(), 10);
        for (i, cell) in grid.cells().iter().enumerate() {
            assert_eq!(cell.index, i);
            assert_eq!(cell.seed, derive_cell_seed(params.master_seed, i as u64));
        }
        assert_eq!(grid.cells()[0].size, 2);
        assert_eq!(grid.cells()[5].size, 8);
        let report = grid.cells()[0].run(2).unwrap();
        assert_eq!(report.stats.devices, 2);
        assert_eq!(report.stats.total.steps, 2 * 100);
    }

    #[test]
    fn online_fleet_matches_preplanned_for_state_blind_dispatch() {
        let members = uniform_fleet(5, FleetPolicy::BreakEvenTimeout);
        for dispatch in DispatchPolicy::state_blind() {
            let config = FleetConfig {
                horizon: 3_000,
                dispatch,
                ..FleetConfig::default()
            };
            let preplanned = FleetSim::new(&members, &bernoulli(0.3), &config).unwrap();
            assert!(!preplanned.is_online());
            let online = FleetSim::new(
                &members,
                &bernoulli(0.3),
                &FleetConfig {
                    force_online: true,
                    ..config
                },
            )
            .unwrap();
            assert!(online.is_online());
            assert_eq!(
                preplanned.dispatched_arrivals(),
                online.dispatched_arrivals()
            );
            assert_eq!(
                preplanned.run(2),
                online.run(2),
                "dispatch={}",
                dispatch.name()
            );
        }
    }

    #[test]
    fn state_aware_dispatch_runs_online_and_conserves_arrivals() {
        let members = uniform_fleet(4, FleetPolicy::BreakEvenTimeout);
        for dispatch in DispatchPolicy::state_aware() {
            let config = FleetConfig {
                horizon: 4_000,
                dispatch,
                ..FleetConfig::default()
            };
            let fleet = FleetSim::new(&members, &bernoulli(0.4), &config).unwrap();
            assert!(fleet.is_online());
            let dispatched = fleet.dispatched_arrivals();
            assert!(dispatched > 0);
            let report = fleet.run(2);
            assert_eq!(report.stats.total.arrivals, dispatched);
            assert_eq!(report.stats.total.steps, 4 * 4_000);
        }
    }

    #[test]
    fn online_fleet_rejects_oracle_members() {
        let members = uniform_fleet(3, FleetPolicy::Oracle);
        let config = FleetConfig {
            horizon: 500,
            dispatch: DispatchPolicy::JoinShortestQueue,
            ..FleetConfig::default()
        };
        let err = FleetSim::new(&members, &bernoulli(0.2), &config).unwrap_err();
        assert!(matches!(err, SimError::BadConfig(_)));
    }

    #[test]
    fn sleep_aware_dispatch_concentrates_load_unlike_round_robin() {
        // A light aggregate load on a large fleet: round-robin spreads
        // arrivals evenly, while sleep-aware routing consolidates them
        // onto the awake subset (sleepers are skipped once they doze off).
        let members = uniform_fleet(8, FleetPolicy::FixedTimeout(20));
        let run = |dispatch| {
            let config = FleetConfig {
                horizon: 5_000,
                dispatch,
                ..FleetConfig::default()
            };
            FleetSim::new(&members, &bernoulli(0.2), &config)
                .unwrap()
                .run(2)
        };
        let rr = run(DispatchPolicy::RoundRobin);
        let sa = run(DispatchPolicy::SleepAware { spill: 4 });
        let hottest = |r: &FleetReport| r.per_device.iter().map(|s| s.arrivals).max().unwrap();
        assert!(
            hottest(&sa) > 2 * hottest(&rr),
            "sa={} rr={}",
            hottest(&sa),
            hottest(&rr)
        );
        assert_eq!(sa.stats.total.arrivals, rr.stats.total.arrivals);
    }

    #[test]
    fn fleet_cell_members_cycle_the_mixes() {
        let params = FleetGridParams {
            device_mix: vec![
                (
                    "a".to_string(),
                    presets::three_state_generic(),
                    presets::default_service(),
                ),
                (
                    "b".to_string(),
                    presets::two_state(1.0, 0.1, 3, 1.2),
                    presets::default_service(),
                ),
            ],
            policy_mix: vec![FleetPolicy::AlwaysOn, FleetPolicy::GreedyOff],
            ..FleetGridParams::default()
        };
        let cell = FleetCell {
            workload_label: "bern".to_string(),
            workload: bernoulli(0.1),
            size: 5,
            dispatch: DispatchPolicy::RoundRobin,
            params,
            seed: 1,
            index: 0,
        };
        let members = cell.members();
        assert_eq!(members.len(), 5);
        assert_eq!(members[0].label, "a-0");
        assert_eq!(members[1].label, "b-1");
        assert_eq!(members[2].policy, FleetPolicy::AlwaysOn);
        assert_eq!(members[3].policy, FleetPolicy::GreedyOff);
    }
}
