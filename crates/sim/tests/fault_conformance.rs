//! Fault-injection conformance suite: the failure domain under the same
//! determinism contract as everything else.
//!
//! A fault-injected run must be **bit-exact** across `EngineMode::PerSlice`
//! and `EngineMode::EventSkip` and across thread counts, because the fault
//! plan is materialized ahead of simulation from seeded per-device
//! SplitMix64 streams and every coordinator reaction (harvest, retry,
//! budget refresh) happens at barrier slices derived from the plan alone.
//! Property tests sweep random fleets x fault plans x dispatchers over
//! the three execution shapes:
//!
//! * **preplanned fleets** — faulted members fall back to the dynamic
//!   per-device path (the batched cohort engine has no fault clock), and
//!   the full [`FleetReport`] stays engine- and thread-exact;
//! * **online dispatch** — down devices are skipped by the state-aware
//!   dispatchers and redirected away from by the router, still exact;
//! * **capped racks** — the budget reclaims a down member's draw, the cap
//!   holds in every slice, and the retry pipeline's conservation law
//!   pins every stranded arrival to exactly one fate.
//!
//! Pinned edge cases cover the all-devices-down shed path (typed reason,
//! no panic), a crash landing mid-service (partial progress reset is
//! engine-exact), and retry backoff timing at 1 vs N threads.

use proptest::prelude::*;
use qdpm_device::{presets, DeviceHealth, FaultEvent, FaultKind};
use qdpm_sim::fleet::{FleetConfig, FleetMember, FleetPolicy, FleetReport, FleetSim};
use qdpm_sim::hierarchy::{RackCoordinator, RackSpec, CAP_EPS};
use qdpm_sim::{policies, EngineMode, ScenarioWorkload, SimConfig, Simulator};
use qdpm_workload::{DispatchPolicy, FaultInjector, WorkloadSpec};

/// The mixed-preset pool fleets draw from.
fn preset_pool() -> Vec<(String, qdpm_device::PowerModel)> {
    ["three-state-generic", "two-state", "ibm-hdd", "wlan-card"]
        .iter()
        .map(|name| {
            (
                (*name).to_string(),
                presets::by_name(name).expect("known preset"),
            )
        })
        .collect()
}

/// Builds a mixed fleet cycling the online-safe exact policies — the
/// population for every fault test (faults are a runtime perturbation, so
/// clairvoyant oracles are out of scope here).
fn mixed_members(size: usize, policy_offset: usize, preset_offset: usize) -> Vec<FleetMember> {
    let presets_pool = preset_pool();
    let policies = FleetPolicy::all_online_exact();
    (0..size)
        .map(|i| {
            let policy = policies[(policy_offset + i) % policies.len()].clone();
            let (label, power) = if matches!(policy, FleetPolicy::SharedQDpm(_)) {
                (
                    "three-state-generic".to_string(),
                    presets::three_state_generic(),
                )
            } else {
                presets_pool[(preset_offset + i) % presets_pool.len()].clone()
            };
            FleetMember {
                label: format!("{label}-{i}"),
                power,
                service: presets::default_service(),
                policy,
            }
        })
        .collect()
}

fn aggregate_workload(kind: usize, rate: f64) -> ScenarioWorkload {
    match kind {
        0 => ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(rate).unwrap()),
        1 => ScenarioWorkload::Stationary(
            WorkloadSpec::two_mode_mmpp(rate * 0.2, (rate * 4.0).min(0.9), 0.01).unwrap(),
        ),
        _ => ScenarioWorkload::Piecewise(vec![
            (700, WorkloadSpec::bernoulli(rate).unwrap()),
            (500, WorkloadSpec::bernoulli((rate * 3.0).min(0.9)).unwrap()),
        ]),
    }
}

/// A lively injector: rates high enough that 1-2k-slice horizons reliably
/// see crashes, stragglers and the occasional fail-stop.
fn injector(
    crash_rate: f64,
    crash_down: u64,
    fail_stop_rate: f64,
    straggle_rate: f64,
    down_power: f64,
) -> FaultInjector {
    FaultInjector {
        crash_rate,
        crash_down,
        fail_stop_rate,
        straggle_rate,
        straggle_slowdown: 3,
        straggle_window: 120,
        down_power,
    }
}

#[allow(clippy::too_many_arguments)] // test helper mirroring FleetConfig knobs
fn run_fleet(
    members: &[FleetMember],
    workload: &ScenarioWorkload,
    faults: &FaultInjector,
    dispatch: DispatchPolicy,
    mode: EngineMode,
    force_online: bool,
    horizon: u64,
    seed: u64,
    threads: usize,
) -> FleetReport {
    FleetSim::new(
        members,
        workload,
        &FleetConfig {
            seed,
            engine_mode: mode,
            dispatch,
            horizon,
            force_online,
            faults: Some(faults.clone()),
            ..FleetConfig::default()
        },
    )
    .expect("fleet builds")
    .run(threads)
}

/// Every stranded arrival has exactly one fate: re-dispatched, still
/// pending, or shed with the typed retry-exhausted reason.
fn assert_retry_conservation(report: &FleetReport) {
    let a = &report.stats.availability;
    assert_eq!(
        a.retries_enqueued,
        a.redispatched + a.retry_pending + a.shed_retry_exhausted,
        "retry pipeline lost or invented a stranded arrival"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Random preplanned fleets under random fault plans: `PerSlice` and
    /// `EventSkip` agree exactly on the full `FleetReport` (per-device
    /// stats, final modes, availability) at any thread count, and the
    /// availability section is structurally sound.
    #[test]
    fn faulted_fleet_is_engine_and_thread_exact(
        size in 1usize..10,
        policy_offset in 0usize..8,
        preset_offset in 0usize..4,
        dispatch_id in 0usize..3,
        workload_kind in 0usize..3,
        rate in 0.05f64..0.6,
        crash_rate in 0.0005f64..0.01,
        crash_down in 20u64..200,
        fail_stop_rate in 0.0f64..0.002,
        straggle_rate in 0.0f64..0.01,
        down_power in 0.0f64..0.3,
        horizon in 400u64..2_000,
        seed in 0u64..10_000,
        threads in 2usize..5,
    ) {
        let members = mixed_members(size, policy_offset, preset_offset);
        let workload = aggregate_workload(workload_kind, rate);
        let faults = injector(crash_rate, crash_down, fail_stop_rate, straggle_rate, down_power);
        let dispatch = DispatchPolicy::state_blind()[dispatch_id % DispatchPolicy::state_blind().len()];

        let reference = run_fleet(&members, &workload, &faults, dispatch,
                                  EngineMode::PerSlice, false, horizon, seed, 1);
        let threaded = run_fleet(&members, &workload, &faults, dispatch,
                                 EngineMode::PerSlice, false, horizon, seed, threads);
        let skip = run_fleet(&members, &workload, &faults, dispatch,
                             EngineMode::EventSkip, false, horizon, seed, threads);
        prop_assert_eq!(&reference, &threaded);
        prop_assert_eq!(&reference, &skip);

        let avail = &reference.stats.availability;
        prop_assert_eq!(avail.downtime_slices.len(), members.len());
        prop_assert!(avail.total_downtime() <= horizon * members.len() as u64);
        if avail.faults_injected == 0 {
            prop_assert_eq!(avail.total_downtime(), 0);
        }
        // Preplanned fleets have no retry coordinator: arrivals dispatched
        // to a down device queue up or are lost at the crash, never retried.
        prop_assert_eq!(avail.retries_enqueued, 0);
        for stats in &reference.per_device {
            prop_assert_eq!(stats.steps, horizon);
        }
    }

    /// Random fleets under the *online* dispatch loop with faults, across
    /// every dispatcher: engine-exact, thread-invariant, and the retry
    /// pipeline conserves every stranded arrival.
    #[test]
    fn faulted_online_dispatch_is_engine_and_thread_exact(
        size in 2usize..9,
        policy_offset in 0usize..8,
        preset_offset in 0usize..4,
        dispatch_id in 0usize..5,
        workload_kind in 0usize..3,
        rate in 0.05f64..0.6,
        crash_rate in 0.001f64..0.01,
        crash_down in 20u64..150,
        fail_stop_rate in 0.0f64..0.002,
        straggle_rate in 0.0f64..0.01,
        down_power in 0.0f64..0.3,
        horizon in 400u64..1_500,
        seed in 0u64..10_000,
        threads in 2usize..5,
    ) {
        let members = mixed_members(size, policy_offset, preset_offset);
        let workload = aggregate_workload(workload_kind, rate);
        let faults = injector(crash_rate, crash_down, fail_stop_rate, straggle_rate, down_power);
        let dispatch = DispatchPolicy::all()[dispatch_id % DispatchPolicy::all().len()];

        let reference = run_fleet(&members, &workload, &faults, dispatch,
                                  EngineMode::PerSlice, true, horizon, seed, 1);
        let per_threaded = run_fleet(&members, &workload, &faults, dispatch,
                                     EngineMode::PerSlice, true, horizon, seed, threads);
        let skip_serial = run_fleet(&members, &workload, &faults, dispatch,
                                    EngineMode::EventSkip, true, horizon, seed, 1);
        let skip_threaded = run_fleet(&members, &workload, &faults, dispatch,
                                      EngineMode::EventSkip, true, horizon, seed, threads);
        prop_assert_eq!(&reference, &per_threaded);
        prop_assert_eq!(&reference, &skip_serial);
        prop_assert_eq!(&reference, &skip_threaded);

        assert_retry_conservation(&reference);
        // Online arrival conservation under faults: every external arrival
        // either entered exactly one device queue, was shed because no
        // device was healthy, or is double-counted once per successful
        // re-dispatch after a harvest.
        let external = FleetSim::new(&members, &workload, &FleetConfig {
            seed, dispatch, horizon, force_online: true, ..FleetConfig::default()
        }).unwrap().dispatched_arrivals();
        let avail = &reference.stats.availability;
        prop_assert_eq!(
            reference.stats.total.arrivals,
            external - avail.shed_no_healthy + avail.redispatched
        );
    }

    /// Random capped racks under faults: the summed draw (including the
    /// fault-specified down power) stays `<= cap + CAP_EPS` in every
    /// slice, the probed per-slice run reproduces the segmented run, and
    /// capped faulted racks stay engine- and thread-exact.
    #[test]
    fn faulted_capped_rack_holds_cap_and_stays_exact(
        size in 2usize..7,
        policy_offset in 0usize..8,
        preset_offset in 0usize..4,
        dispatch_id in 0usize..5,
        workload_kind in 0usize..3,
        rate in 0.05f64..0.6,
        headroom in 0.05f64..1.2,
        crash_rate in 0.001f64..0.01,
        crash_down in 20u64..150,
        fail_stop_rate in 0.0f64..0.002,
        down_power in 0.0f64..0.2,
        horizon in 400u64..1_200,
        seed in 0u64..10_000,
        threads in 2usize..5,
    ) {
        let members = mixed_members(size, policy_offset, preset_offset);
        let floor: f64 = members.iter()
            .map(|m| m.power.state(m.power.lowest_power_state()).power)
            .sum();
        let peak: f64 = members.iter()
            .map(|m| m.power.state(m.power.highest_power_state()).power)
            .sum();
        // The cap law is only enforceable for *feasible* caps: a down
        // member's fault-specified draw is physics, not a command the
        // budget can refuse, so the worst-case forced draw — every member
        // down at `max(down_power, floor)` — is the hard lower bound on
        // any cap a controller could hold.
        let forced: f64 = members.iter()
            .map(|m| m.power.state(m.power.lowest_power_state()).power.max(down_power))
            .sum();
        let cap = (forced + headroom * (peak - floor + 0.1)).max(0.05);
        let spec = RackSpec {
            label: "rack".to_string(),
            members,
            power_cap: Some(cap),
        };
        let workload = aggregate_workload(workload_kind, rate);
        let dispatch = DispatchPolicy::all()[dispatch_id % DispatchPolicy::all().len()];
        let faults = injector(crash_rate, crash_down, fail_stop_rate, 0.0, down_power);
        let config = |mode| FleetConfig {
            seed, dispatch, horizon, engine_mode: mode,
            faults: Some(faults.clone()),
            ..FleetConfig::default()
        };

        let (probed, per_slice) = RackCoordinator::new(&spec, &config(EngineMode::PerSlice))
            .unwrap()
            .run_probed(&workload)
            .unwrap();
        prop_assert_eq!(per_slice.len() as u64, horizon);
        for (slice, &energy) in per_slice.iter().enumerate() {
            prop_assert!(
                energy <= cap + CAP_EPS,
                "slice {} draws {} > cap {}", slice, energy, cap
            );
        }
        assert_retry_conservation(&probed.fleet);
        prop_assert_eq!(probed.health.len(), spec.members.len());

        let segmented = RackCoordinator::new(&spec, &config(EngineMode::PerSlice))
            .unwrap()
            .run(&workload, threads)
            .unwrap();
        prop_assert_eq!(&probed, &segmented);
        let skip = RackCoordinator::new(&spec, &config(EngineMode::EventSkip))
            .unwrap()
            .run(&workload, threads)
            .unwrap();
        prop_assert_eq!(&probed, &skip);
    }
}

/// Every device fail-stops at slice 1: the rack keeps routing without
/// panicking, sheds everything that arrives after the collapse with the
/// typed no-healthy-device reason, and reports every member down.
#[test]
fn all_devices_down_sheds_with_typed_reason() {
    let members = mixed_members(4, 0, 0);
    let spec = RackSpec {
        label: "doomed".to_string(),
        members,
        power_cap: None,
    };
    let workload = aggregate_workload(0, 0.5);
    let faults = FaultInjector {
        fail_stop_rate: 1.0,
        down_power: 0.02,
        ..FaultInjector::default()
    };
    let horizon = 800u64;
    let config = |mode| FleetConfig {
        seed: 91,
        dispatch: DispatchPolicy::JoinShortestQueue,
        horizon,
        engine_mode: mode,
        faults: Some(faults.clone()),
        ..FleetConfig::default()
    };

    let report = RackCoordinator::new(&spec, &config(EngineMode::PerSlice))
        .unwrap()
        .run(&workload, 1)
        .unwrap();
    let avail = &report.fleet.stats.availability;
    assert_eq!(avail.faults_injected, 4, "every member fail-stops");
    assert!(
        avail.shed_no_healthy > 0,
        "a 0.5-rate stream over {horizon} slices must shed after the collapse"
    );
    for (i, health) in report.health.iter().enumerate() {
        assert_eq!(*health, DeviceHealth::Down, "member {i} should stay down");
        assert_eq!(health.name(), "down");
    }
    // Fail-stop at slice 1 means each device is down from slice 1 onward.
    for &downtime in &avail.downtime_slices {
        assert_eq!(downtime, horizon - 1);
    }
    // Whatever was admitted in slice 0 plus the fleet's arrivals must all
    // be accounted: nothing vanishes even when the whole rack dies.
    assert_retry_conservation(&report.fleet);

    // The collapse is engine-exact too.
    let skip = RackCoordinator::new(&spec, &config(EngineMode::EventSkip))
        .unwrap()
        .run(&workload, 4)
        .unwrap();
    assert_eq!(report, skip);
}

/// A transient crash landing mid-service: the in-flight request's partial
/// progress is reset deterministically, downtime and queue-loss accounting
/// match the schedule, and both engine modes agree bit-for-bit.
#[test]
fn crash_mid_service_pins_partial_progress() {
    // A steady trace keeps the server busy, and a burst right before the
    // onset guarantees a backlog the crash can strand (geometric-0.6
    // service outruns the steady 1-in-3 stream on its own).
    let trace: Vec<u32> = (0..400)
        .map(|i| {
            if (50..60).contains(&i) {
                2
            } else {
                u32::from(i % 3 == 0)
            }
        })
        .collect();
    let schedule = vec![FaultEvent {
        at: 60,
        kind: FaultKind::TransientCrash {
            down_for: 45,
            down_power: 0.07,
        },
    }];
    let run = |mode: EngineMode| {
        let power = presets::three_state_generic();
        let pm = policies::FixedTimeout::break_even(&power);
        let mut sim = Simulator::new(
            power,
            presets::default_service(),
            WorkloadSpec::Trace {
                arrivals: trace.clone(),
            }
            .build(),
            Box::new(pm),
            SimConfig {
                seed: 7,
                mode,
                ..SimConfig::default()
            },
        )
        .unwrap();
        sim.set_fault_schedule(schedule.clone());
        let stats = sim.run(400);
        (stats, *sim.fault_stats(), sim.health())
    };

    let (per, per_faults, per_health) = run(EngineMode::PerSlice);
    let (skip, skip_faults, skip_health) = run(EngineMode::EventSkip);
    assert_eq!(per, skip, "crash mid-service must stay engine-exact");
    assert_eq!(per_faults, skip_faults);
    assert_eq!(per_health, skip_health);

    assert_eq!(per_faults.faults_injected, 1);
    assert_eq!(per_faults.downtime_slices, 45);
    assert_eq!(per_health, DeviceHealth::Healthy, "crash window expired");
    // The crash drains the queue: with arrivals every 3 slices against
    // this service rate the queue cannot be empty at slice 60.
    assert!(
        per_faults.queue_lost > 0,
        "slice-60 crash should strand queued work (lost {})",
        per_faults.queue_lost
    );
    // Lost requests are really lost: completions plus the end-of-run queue
    // can never cover all arrivals once the crash drops the backlog.
    assert!(per.completed < per.arrivals);

    // The same run without the fault completes strictly more work — the
    // partial-progress reset is observable, not just bookkeeping.
    let clean = {
        let power = presets::three_state_generic();
        let pm = policies::FixedTimeout::break_even(&power);
        let mut sim = Simulator::new(
            power,
            presets::default_service(),
            WorkloadSpec::Trace {
                arrivals: trace.clone(),
            }
            .build(),
            Box::new(pm),
            SimConfig {
                seed: 7,
                mode: EngineMode::PerSlice,
                ..SimConfig::default()
            },
        )
        .unwrap();
        sim.run(400)
    };
    assert!(clean.completed > per.completed);
}

/// Retry backoff timing is thread-invariant: a crashy uncapped rack whose
/// harvest/redispatch pipeline actually fires produces bit-identical
/// reports (including every retry counter) at 1 and 4 threads, in both
/// engine modes.
#[test]
fn retry_backoff_is_thread_invariant() {
    let members = mixed_members(5, 1, 1);
    let spec = RackSpec {
        label: "crashy".to_string(),
        members,
        power_cap: None,
    };
    let workload = aggregate_workload(2, 0.5);
    let faults = FaultInjector {
        crash_rate: 0.004,
        crash_down: 60,
        down_power: 0.05,
        ..FaultInjector::default()
    };
    let config = |mode| FleetConfig {
        seed: 4242,
        dispatch: DispatchPolicy::LeastLoaded,
        horizon: 1_200,
        engine_mode: mode,
        faults: Some(faults.clone()),
        ..FleetConfig::default()
    };

    let reference = RackCoordinator::new(&spec, &config(EngineMode::PerSlice))
        .unwrap()
        .run(&workload, 1)
        .unwrap();
    let avail = &reference.fleet.stats.availability;
    assert!(
        avail.retries_enqueued > 0,
        "this plan must strand work into the retry queue"
    );
    assert!(
        avail.redispatched > 0,
        "with 5 members some retries must find a healthy target"
    );
    assert_retry_conservation(&reference.fleet);

    for threads in [2usize, 4] {
        let threaded = RackCoordinator::new(&spec, &config(EngineMode::PerSlice))
            .unwrap()
            .run(&workload, threads)
            .unwrap();
        assert_eq!(reference, threaded, "{threads} threads diverged");
        let skip = RackCoordinator::new(&spec, &config(EngineMode::EventSkip))
            .unwrap()
            .run(&workload, threads)
            .unwrap();
        assert_eq!(reference, skip, "event-skip at {threads} threads diverged");
    }
}
