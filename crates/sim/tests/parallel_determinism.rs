//! Determinism suite for the parallel experiment runner.
//!
//! The contract of `qdpm_sim::parallel`: the grid runner produces
//! byte-identical TSV to the serial path at any thread count, and
//! re-running the same grid is identical. CI runs this suite in `--release`
//! so the threaded paths are exercised under the optimized scheduling the
//! benchmarks rely on.

use qdpm_core::RewardWeights;
use qdpm_device::presets;
use qdpm_sim::experiment::{run_grid, run_sweep, run_sweep_threaded, sweep_rows_to_tsv};
use qdpm_sim::{GridParams, ScenarioGrid, ScenarioWorkload};
use qdpm_workload::WorkloadSpec;

/// A small but diverse grid: two devices, Bernoulli + Markov-modulated +
/// piecewise-stationary workloads, two replicates.
fn diverse_grid() -> ScenarioGrid {
    let devices = vec![
        ("three-state".to_string(), presets::three_state_generic()),
        (
            "two-state".to_string(),
            presets::two_state(1.0, 0.1, 3, 1.2),
        ),
    ];
    let workloads = vec![
        (
            "bern-0.05".to_string(),
            ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(0.05).unwrap()),
        ),
        (
            "mmpp".to_string(),
            ScenarioWorkload::Stationary(WorkloadSpec::two_mode_mmpp(0.02, 0.4, 0.01).unwrap()),
        ),
        (
            "piecewise".to_string(),
            ScenarioWorkload::Piecewise(vec![
                (2_000, WorkloadSpec::bernoulli(0.02).unwrap()),
                (2_000, WorkloadSpec::bernoulli(0.25).unwrap()),
            ]),
        ),
    ];
    let services = vec![presets::default_service()];
    ScenarioGrid::cartesian(
        &devices,
        &workloads,
        &services,
        2,
        &GridParams {
            queue_cap: 8,
            weights: RewardWeights::default(),
            train: 4_000,
            evaluate: 1_000,
            master_seed: 5,
            ..GridParams::default()
        },
    )
}

#[test]
fn grid_runner_is_byte_identical_across_thread_counts() {
    let grid = diverse_grid();
    let serial = sweep_rows_to_tsv(&run_grid(&grid, 1).unwrap());
    assert!(!serial.is_empty());
    for threads in [2, 4] {
        let parallel = sweep_rows_to_tsv(&run_grid(&grid, threads).unwrap());
        assert_eq!(
            serial, parallel,
            "TSV must be byte-identical at {threads} threads"
        );
    }
}

#[test]
fn grid_runner_is_reproducible_across_runs() {
    let grid = diverse_grid();
    let first = sweep_rows_to_tsv(&run_grid(&grid, 4).unwrap());
    let second = sweep_rows_to_tsv(&run_grid(&grid, 4).unwrap());
    assert_eq!(first, second, "re-running the same grid must be identical");
}

#[test]
fn refit_sweep_matches_serial_at_any_thread_count() {
    // The production T4 entry point, shrunk: the exact TSV the bin would
    // save must agree between the serial wrapper and the threaded runner.
    let devices = vec![("three-state".to_string(), presets::three_state_generic())];
    let arrival_ps = [0.02, 0.2];
    let service_ps = [0.6];
    let serial =
        sweep_rows_to_tsv(&run_sweep(&devices, &arrival_ps, &service_ps, 5_000, 1_000, 3).unwrap());
    for threads in [2, 4] {
        let parallel = sweep_rows_to_tsv(
            &run_sweep_threaded(&devices, &arrival_ps, &service_ps, 5_000, 1_000, 3, threads)
                .unwrap(),
        );
        assert_eq!(serial, parallel, "threads={threads}");
    }
}

#[test]
fn distinct_master_seeds_change_the_rows() {
    // Sanity that the per-cell seeding actually varies with the master
    // seed (otherwise determinism would be trivially satisfied by a
    // constant).
    let devices = vec![("three-state".to_string(), presets::three_state_generic())];
    let a = sweep_rows_to_tsv(&run_sweep(&devices, &[0.2], &[0.6], 3_000, 1_000, 3).unwrap());
    let b = sweep_rows_to_tsv(&run_sweep(&devices, &[0.2], &[0.6], 3_000, 1_000, 4).unwrap());
    assert_ne!(a, b, "different master seeds must produce different runs");
}
