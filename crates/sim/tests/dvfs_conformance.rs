//! DVFS joint-action conformance suite.
//!
//! Fleets of `three-state-dvfs` devices — the joint sleep-state ×
//! operating-point machine (`active@slow` / `active@nominal` /
//! `active@turbo` / `idle` / `sleep`) — with deadline-tagged workloads
//! must be *exactly* engine- and thread-invariant: `EngineMode::PerSlice`
//! at one thread and `EngineMode::EventSkip` at N threads produce
//! bit-identical [`FleetReport`]s, including the [`DeadlineStats`]
//! ledger. The frequency-scaled service law and the deadline side stream
//! (`splitmix64` on a per-device counter that only advances on arrival
//! slices) are both designed to preserve this invariant; this suite pins
//! it under randomness-free-commitment policies, every dispatcher, and
//! random fleet shapes.
//!
//! The deadline ledger's conservation law is asserted on every run:
//!
//! ```text
//! tagged == met + missed + dropped + requeued + lost + in_queue
//! ```
//!
//! with `tagged == arrivals`, `met + missed == completed` and
//! `dropped == RunStats::dropped` on fault-free fleets.
//!
//! A single-simulator section pins the checkpoint contract: a mid-run
//! save/load with deadlines enabled resumes bit-identically (ledger,
//! waiting deadlines and draw counter all travel in the payload), and
//! deadline draws are a pure function of `(seed, counter)` — reruns of
//! an identical configuration reproduce the identical ledger.

use proptest::prelude::*;
use qdpm_core::{StateReader, StateWriter};
use qdpm_device::presets;
use qdpm_sim::fleet::{FleetConfig, FleetMember, FleetPolicy, FleetReport, FleetSim};
use qdpm_sim::{EngineMode, ScenarioWorkload, SimConfig, Simulator};
use qdpm_workload::{DeadlineSpec, DeadlineStats, DispatchPolicy, WorkloadSpec};

/// A homogeneous-dimension DVFS fleet: every member runs the five-state
/// `three-state-dvfs` machine, with the engine-exact policies cycled
/// from `policy_offset`. Homogeneous dimensions keep `SharedQDpm`
/// members legal without special-casing (all tables agree on the joint
/// action space).
fn dvfs_members(size: usize, policy_offset: usize) -> Vec<FleetMember> {
    let policies = FleetPolicy::all_exact();
    (0..size)
        .map(|i| FleetMember {
            label: format!("dvfs-{i}"),
            power: presets::three_state_dvfs(),
            service: presets::default_service(),
            policy: policies[(policy_offset + i) % policies.len()].clone(),
        })
        .collect()
}

fn aggregate_workload(kind: usize, rate: f64) -> ScenarioWorkload {
    match kind {
        0 => ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(rate).unwrap()),
        1 => ScenarioWorkload::Stationary(
            WorkloadSpec::two_mode_mmpp(rate * 0.2, (rate * 4.0).min(0.9), 0.01).unwrap(),
        ),
        _ => ScenarioWorkload::Piecewise(vec![
            (700, WorkloadSpec::bernoulli(rate).unwrap()),
            (500, WorkloadSpec::bernoulli((rate * 3.0).min(0.9)).unwrap()),
        ]),
    }
}

fn dispatcher(id: usize) -> DispatchPolicy {
    DispatchPolicy::all()[id % DispatchPolicy::all().len()]
}

fn deadline_spec(kind: usize) -> DeadlineSpec {
    match kind {
        0 => DeadlineSpec::fixed(6).unwrap(),
        _ => DeadlineSpec::uniform(3, 20).unwrap(),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_dvfs_fleet(
    members: &[FleetMember],
    workload: &ScenarioWorkload,
    dispatch: DispatchPolicy,
    mode: EngineMode,
    horizon: u64,
    seed: u64,
    threads: usize,
    deadline: Option<DeadlineSpec>,
) -> FleetReport {
    FleetSim::new(
        members,
        workload,
        &FleetConfig {
            seed,
            engine_mode: mode,
            dispatch,
            horizon,
            deadline,
            ..FleetConfig::default()
        },
    )
    .expect("dvfs fleet builds")
    .run(threads)
}

/// The ledger conservation law on a fault-free fleet report: every
/// tagged arrival is in exactly one terminal bucket or still waiting.
fn assert_deadline_conservation(report: &FleetReport) {
    let d = &report.stats.deadline;
    let total = &report.stats.total;
    assert_eq!(d.tagged, total.arrivals, "every arrival is tagged");
    assert_eq!(d.met + d.missed, total.completed, "completions classified");
    assert_eq!(d.dropped, total.dropped, "admission drops agree");
    assert_eq!(d.requeued, 0, "no retry coordinator in plain fleets");
    assert_eq!(d.lost, 0, "no crashes in fault-free fleets");
    let in_queue = total.arrivals - total.completed - total.dropped;
    assert_eq!(
        d.tagged,
        d.settled() + in_queue,
        "tagged == met + missed + dropped + requeued + lost + in_queue"
    );
}

/// The joint machine itself: five states, named as the expansion
/// promises, with the nominal point reproducing the base active power.
#[test]
fn dvfs_preset_exposes_the_joint_state_space() {
    let model = presets::by_name("three-state-dvfs").expect("registered preset");
    assert_eq!(model.n_states(), 5);
    let base = presets::three_state_generic();
    // The expansion appends operating points for the serving state and
    // keeps the non-serving states; nominal matches base active power.
    let names: Vec<&str> = (0..model.n_states())
        .map(|i| {
            model
                .state(qdpm_device::PowerStateId::from_index(i))
                .name
                .as_str()
        })
        .collect();
    assert!(names.contains(&"active@slow"));
    assert!(names.contains(&"active@nominal"));
    assert!(names.contains(&"active@turbo"));
    assert!(names.contains(&"idle"));
    assert!(names.contains(&"sleep"));
    let nominal = (0..model.n_states())
        .map(qdpm_device::PowerStateId::from_index)
        .find(|&s| model.state(s).name == "active@nominal")
        .unwrap();
    let base_active = (0..base.n_states())
        .map(qdpm_device::PowerStateId::from_index)
        .find(|&s| base.state(s).name == "active")
        .unwrap();
    assert_eq!(
        model.state(nominal).power.to_bits(),
        base.state(base_active).power.to_bits()
    );
    assert_eq!(model.state(nominal).freq, 1.0);
}

/// Pinned sweep: one DVFS fleet per state-blind dispatcher (the
/// population that supports clairvoyant oracle members), deadlines on —
/// the two engines and 1-vs-4 threads agree on the full report, and the
/// ledger conserves.
#[test]
fn dvfs_deadline_fleet_event_skip_exact_per_dispatcher() {
    let members = dvfs_members(6, 0);
    let workload = aggregate_workload(0, 0.3);
    let deadline = Some(DeadlineSpec::uniform(4, 16).unwrap());
    for id in 0..3 {
        let dispatch = dispatcher(id);
        let per = run_dvfs_fleet(
            &members,
            &workload,
            dispatch,
            EngineMode::PerSlice,
            1_800,
            7,
            1,
            deadline,
        );
        let skip = run_dvfs_fleet(
            &members,
            &workload,
            dispatch,
            EngineMode::EventSkip,
            1_800,
            7,
            4,
            deadline,
        );
        assert_eq!(per.stats, skip.stats, "dispatcher {id}");
        assert_eq!(per.per_device, skip.per_device, "dispatcher {id}");
        assert_eq!(per.final_modes, skip.final_modes, "dispatcher {id}");
        assert!(per.stats.deadline.tagged > 0, "workload actually tagged");
        assert_deadline_conservation(&per);
        assert_deadline_conservation(&skip);
    }
}

/// Deadline draws are a pure function of `(seed, counter)`: rerunning an
/// identical DVFS+deadline configuration reproduces the identical
/// ledger, and changing only the master seed changes the draws (the side
/// stream is live, not constant).
#[test]
fn deadline_ledger_is_deterministic_and_seed_sensitive() {
    let build = |seed: u64| {
        let power = presets::three_state_dvfs();
        let pm = qdpm_core::QDpmAgent::new(&power, qdpm_core::QDpmConfig::default()).unwrap();
        let mut sim = Simulator::new(
            power,
            presets::default_service(),
            WorkloadSpec::bernoulli(0.35).unwrap().build(),
            Box::new(pm),
            SimConfig {
                seed,
                deadline: Some(DeadlineSpec::uniform(2, 30).unwrap()),
                ..SimConfig::default()
            },
        )
        .unwrap();
        sim.run(2_000);
        sim
    };
    let a = build(11);
    let b = build(11);
    assert_eq!(a.deadline_stats(), b.deadline_stats());
    assert_eq!(a.stats(), b.stats());
    assert!(a.deadline_stats().tagged > 0);
    assert!(a.deadline_stats().met + a.deadline_stats().missed > 0);
    // A different master seed shifts the side stream with everything else.
    let c = build(12);
    assert_ne!(a.deadline_stats(), c.deadline_stats());
}

/// A checkpoint taken mid-run with deadlines enabled restores the
/// waiting requests' deadlines, the draw counter and the ledger: the
/// resumed simulator continues bit-identically in both engine modes.
#[test]
fn save_load_resumes_bit_identically_with_deadlines() {
    for mode in [EngineMode::PerSlice, EngineMode::EventSkip] {
        let build = || {
            let power = presets::three_state_dvfs();
            let pm = qdpm_core::QDpmAgent::new(&power, qdpm_core::QDpmConfig::default()).unwrap();
            Simulator::new(
                power,
                presets::default_service(),
                WorkloadSpec::bernoulli(0.12).unwrap().build(),
                Box::new(pm),
                SimConfig {
                    seed: 29,
                    mode,
                    deadline: Some(DeadlineSpec::uniform(3, 12).unwrap()),
                    ..SimConfig::default()
                },
            )
            .unwrap()
        };
        let mut reference = build();
        let mut first = build();
        reference.run(1_500);
        first.run(1_500);
        let mut payload = StateWriter::new();
        first.save_state(&mut payload);
        let bytes = payload.into_bytes();
        let mut resumed = build();
        resumed.load_state(&mut StateReader::new(&bytes)).unwrap();
        assert_eq!(
            reference.run(1_500),
            resumed.run(1_500),
            "{mode:?}: resumed stretch diverged"
        );
        assert_eq!(
            reference.deadline_stats(),
            resumed.deadline_stats(),
            "{mode:?}: deadline ledger diverged after resume"
        );
        assert_eq!(
            reference.stats().total_energy.to_bits(),
            resumed.stats().total_energy.to_bits(),
            "{mode:?}: energy must match to the bit"
        );
        let d = reference.deadline_stats();
        assert!(d.tagged > 0, "{mode:?}: workload actually tagged");
        assert_eq!(
            d.tagged,
            reference.stats().arrivals,
            "{mode:?}: every arrival tagged"
        );
    }
}

/// Deadline-free DVFS fleets at the nominal-only frequency law are
/// still engine-exact — the frequency scaling itself (turbo completes
/// faster in expectation, slow slower) cannot break conformance.
#[test]
fn dvfs_fleet_without_deadlines_stays_engine_exact() {
    let members = dvfs_members(5, 3);
    let workload = aggregate_workload(2, 0.25);
    let per = run_dvfs_fleet(
        &members,
        &workload,
        dispatcher(1),
        EngineMode::PerSlice,
        1_200,
        3,
        1,
        None,
    );
    let skip = run_dvfs_fleet(
        &members,
        &workload,
        dispatcher(1),
        EngineMode::EventSkip,
        1_200,
        3,
        4,
        None,
    );
    assert_eq!(per.stats, skip.stats);
    assert_eq!(per.per_device, skip.per_device);
    assert_eq!(per.final_modes, skip.final_modes);
    assert_eq!(per.stats.deadline, DeadlineStats::default());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random DVFS fleets with deadline-tagged workloads: `PerSlice` and
    /// `EventSkip` agree exactly on the full `FleetReport` — including
    /// the merged `DeadlineStats` ledger — at any thread count, across
    /// every dispatcher and all ten exact policies, and the ledger
    /// conservation law holds in both engines.
    #[test]
    fn dvfs_deadline_fleets_are_engine_and_thread_exact(
        size in 1usize..10,
        policy_offset in 0usize..10,
        dispatch_id in 0usize..3,
        workload_kind in 0usize..3,
        rate in 0.05f64..0.6,
        horizon in 300u64..2_000,
        seed in 0u64..10_000,
        threads in 1usize..5,
        deadline_kind in 0usize..2,
    ) {
        let members = dvfs_members(size, policy_offset);
        let workload = aggregate_workload(workload_kind, rate);
        let dispatch = dispatcher(dispatch_id);
        let deadline = Some(deadline_spec(deadline_kind));
        let per = run_dvfs_fleet(&members, &workload, dispatch,
                                 EngineMode::PerSlice, horizon, seed, 1, deadline);
        let skip = run_dvfs_fleet(&members, &workload, dispatch,
                                  EngineMode::EventSkip, horizon, seed, threads, deadline);
        prop_assert_eq!(&per.stats, &skip.stats);
        prop_assert_eq!(&per.per_device, &skip.per_device);
        prop_assert_eq!(&per.final_modes, &skip.final_modes);
        assert_deadline_conservation(&per);
        assert_deadline_conservation(&skip);
    }
}
