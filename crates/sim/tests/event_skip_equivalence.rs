//! Engine-mode equivalence suite: `EngineMode::EventSkip` against the
//! per-slice reference.
//!
//! Two gates, matching the mode's contract:
//!
//! * **exact** — on trace-driven (deterministic) workloads with policies
//!   whose commitment consumes no randomness, the two modes must produce
//!   *exactly* equal metrics (f64 totals bit-for-bit, via `PartialEq` on
//!   `RunStats`); a property test sweeps random traces, policies, device
//!   timings and run lengths;
//! * **statistical** — on stochastic workloads (Bernoulli, MMPP) the gap
//!   samplers and the learning agent's stay runs legitimately reorder RNG
//!   draws, so the modes are only equal in law: a pinned multi-seed suite
//!   checks that the per-mode means agree within a Welch-style confidence
//!   band.

use proptest::prelude::*;
use qdpm_core::{Exploration, PowerManager, QDpmAgent, QDpmConfig, QosConfig, QosQDpmAgent};
use qdpm_device::presets;
use qdpm_sim::{policies, EngineMode, RunStats, SimConfig, Simulator};
use qdpm_workload::WorkloadSpec;

/// SplitMix64 finalizer: deterministic trace material from a seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A random sparse looping trace: mostly zeros with occasional bursts,
/// so event skipping has both long quiescent stretches and busy pockets.
fn random_trace(seed: u64, len: usize, sparsity: u64) -> Vec<u32> {
    let mut state = seed;
    let mut arrivals = vec![0u32; len];
    for slot in arrivals.iter_mut() {
        let r = splitmix(&mut state);
        if r.is_multiple_of(sparsity) {
            *slot = 1 + (r >> 32) as u32 % 2;
        }
    }
    // Guarantee at least one arrival so the trace is not degenerate.
    if arrivals.iter().all(|&a| a == 0) {
        arrivals[len / 2] = 1;
    }
    arrivals
}

fn policy_for(power: &qdpm_device::PowerModel, id: usize, trace: &[u32]) -> Box<dyn PowerManager> {
    match id {
        0 => Box::new(policies::AlwaysOn::new(power)),
        1 => Box::new(policies::GreedyOff::new(power)),
        2 => Box::new(policies::FixedTimeout::break_even(power)),
        3 => Box::new(policies::FixedTimeout::new(power, 2)),
        4 => Box::new(policies::AdaptiveTimeout::new(power)),
        5 => Box::new(policies::Oracle::from_trace(power, trace)),
        6 => Box::new(policies::Oracle::from_trace(power, trace).with_prewake()),
        // Zero-epsilon Q-DPM: greedy decides and stay runs consume no
        // randomness, so even the learner must be metric-exact.
        7 => Box::new(
            QDpmAgent::new(
                power,
                QDpmConfig {
                    exploration: Exploration::EpsilonGreedy { epsilon: 0.0 },
                    ..QDpmConfig::default()
                },
            )
            .unwrap(),
        ),
        _ => Box::new(
            QosQDpmAgent::new(
                power,
                QosConfig {
                    exploration: Exploration::EpsilonGreedy { epsilon: 0.0 },
                    ..QosConfig::default()
                },
            )
            .unwrap(),
        ),
    }
}

fn run_trace(
    trace: &[u32],
    policy_id: usize,
    mode: EngineMode,
    steps: u64,
    chunks: &[u64],
) -> (Vec<RunStats>, qdpm_core::Observation) {
    let power = presets::three_state_generic();
    let pm = policy_for(&power, policy_id, trace);
    let mut sim = Simulator::new(
        power,
        presets::default_service(),
        WorkloadSpec::Trace {
            arrivals: trace.to_vec(),
        }
        .build(),
        pm,
        SimConfig {
            seed: 9,
            mode,
            ..SimConfig::default()
        },
    )
    .unwrap();
    // Split the run at the given chunk boundaries (stretches must survive
    // run() call boundaries), then finish the remainder.
    let mut out = Vec::new();
    let mut done = 0;
    for &c in chunks {
        let c = c.min(steps - done);
        out.push(sim.run(c));
        done += c;
    }
    out.push(sim.run(steps - done));
    (out, sim.observation())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exact equivalence on random trace-driven workloads, all policies
    /// with randomness-free commitments, arbitrary chunking.
    #[test]
    fn event_skip_is_exact_on_random_traces(
        seed in 0u64..10_000,
        len in 20usize..160,
        sparsity in 2u64..40,
        policy_id in 0usize..9,
        steps in 500u64..4_000,
        chunk in 1u64..2_000,
    ) {
        let trace = random_trace(seed, len, sparsity);
        let (per, obs_per) = run_trace(&trace, policy_id, EngineMode::PerSlice, steps, &[chunk]);
        let (skip, obs_skip) = run_trace(&trace, policy_id, EngineMode::EventSkip, steps, &[chunk]);
        prop_assert_eq!(&per, &skip);
        prop_assert_eq!(obs_per, obs_skip);
    }
}

/// Pinned exact case: the acceptance gate's canonical trace scenario.
#[test]
fn event_skip_pinned_trace_is_exact_for_all_deterministic_policies() {
    let mut trace = vec![0u32; 97];
    for at in [3usize, 5, 6, 40, 44, 90] {
        trace[at] = 1;
    }
    trace[41] = 3; // a burst that overflows service for a while
    for policy_id in 0..9 {
        let (per, obs_per) = run_trace(&trace, policy_id, EngineMode::PerSlice, 12_000, &[4_321]);
        let (skip, obs_skip) =
            run_trace(&trace, policy_id, EngineMode::EventSkip, 12_000, &[4_321]);
        assert_eq!(per, skip, "policy {policy_id}");
        assert_eq!(obs_per, obs_skip, "policy {policy_id}");
    }
}

/// Mean and standard deviation of a sample.
fn mean_sd(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// Welch z statistic for the difference of two sample means.
fn welch_z(a: &[f64], b: &[f64]) -> f64 {
    let (ma, sa) = mean_sd(a);
    let (mb, sb) = mean_sd(b);
    let se = (sa * sa / a.len() as f64 + sb * sb / b.len() as f64).sqrt();
    if se == 0.0 {
        if (ma - mb).abs() < 1e-12 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (ma - mb) / se
    }
}

/// Multi-seed statistical equivalence on stochastic workloads: for each
/// (workload, policy) pair, the per-mode means of average power, average
/// cost and arrival rate must agree within ~4 standard errors. Gap
/// sampling and stay runs change the draw order, so per-seed trajectories
/// differ — only the law is preserved.
#[test]
fn event_skip_is_statistically_equivalent_on_stochastic_workloads() {
    let workloads: Vec<(&str, WorkloadSpec)> = vec![
        ("bernoulli(0.04)", WorkloadSpec::bernoulli(0.04).unwrap()),
        (
            "mmpp(sparse)",
            WorkloadSpec::two_mode_mmpp(0.01, 0.30, 0.002).unwrap(),
        ),
    ];
    let power = presets::three_state_generic();
    let build_pm = |which: usize| -> Box<dyn PowerManager> {
        match which {
            // The learning agent exercises stay runs (constant epsilon).
            0 => Box::new(QDpmAgent::new(&power, QDpmConfig::default()).unwrap()),
            _ => Box::new(policies::FixedTimeout::break_even(&power)),
        }
    };
    let seeds: Vec<u64> = (0..24).map(|i| 1000 + 7 * i).collect();
    let slices = 30_000u64;
    for (wl_name, spec) in &workloads {
        for which in 0..2 {
            let collect = |mode: EngineMode| {
                let mut powers = Vec::new();
                let mut costs = Vec::new();
                let mut rates = Vec::new();
                for &seed in &seeds {
                    let mut sim = Simulator::new(
                        power.clone(),
                        presets::default_service(),
                        spec.build(),
                        build_pm(which),
                        SimConfig {
                            seed,
                            mode,
                            ..SimConfig::default()
                        },
                    )
                    .unwrap();
                    let stats = sim.run(slices);
                    powers.push(stats.avg_power());
                    costs.push(stats.avg_cost());
                    rates.push(stats.arrivals as f64 / stats.steps as f64);
                }
                (powers, costs, rates)
            };
            let (pa, ca, ra) = collect(EngineMode::PerSlice);
            let (pb, cb, rb) = collect(EngineMode::EventSkip);
            for (metric, a, b) in [
                ("avg_power", &pa, &pb),
                ("avg_cost", &ca, &cb),
                ("arrival_rate", &ra, &rb),
            ] {
                let z = welch_z(a, b);
                assert!(
                    z.abs() < 4.0,
                    "{wl_name}/pm{which}/{metric}: |z| = {:.2} (means {:.6} vs {:.6})",
                    z.abs(),
                    mean_sd(a).0,
                    mean_sd(b).0,
                );
            }
        }
    }
}
