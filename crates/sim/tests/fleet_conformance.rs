//! Fleet-level cross-engine conformance and conservation suite.
//!
//! Mirrors `event_skip_equivalence.rs` one level up: a fleet built from
//! randomness-free-commitment policies must produce *exactly* equal
//! [`FleetStats`] (f64 totals bit-for-bit, via `PartialEq`) under
//! `EngineMode::PerSlice` and `EngineMode::EventSkip`, because every
//! per-device workload is a dispatched [`qdpm_workload::SparseTrace`]
//! whose gap sampler consumes no randomness. A property test sweeps
//! random fleets — mixed device presets, all ten [`FleetPolicy`] kinds,
//! every dispatcher — and pinned cases cover each dispatcher explicitly.
//!
//! The same suite pins the fleet conservation laws:
//!
//! * **partition** — the dispatcher assigns every aggregate arrival to
//!   exactly one device (fleet arrivals == dispatched == an independent
//!   re-draw of the aggregate stream);
//! * **fold** — `FleetStats::total` equals the left fold of the
//!   per-device `RunStats` in device order, bit-for-bit.
//!
//! The *online* dispatch loop is gated here too: every dispatcher
//! (state-blind and state-aware) run online must be engine-exact and
//! thread-count-invariant, a state-blind dispatcher run online must
//! reproduce its precomputed split bit-for-bit, and a power-capped
//! [`RackCoordinator`] must satisfy the cap conservation law — summed
//! rack draw `<= cap + CAP_EPS` in *every* slice of randomized racks —
//! while staying engine-exact itself.
//!
//! The batched structure-of-arrays cohort engine is the third execution
//! axis under test: fleets with repeated member templates must produce
//! identical [`FleetReport`]s with cohort batching on (the default) and
//! off, at 1 and N threads, and agree with `EventSkip` (which never
//! batches) — so batched ≡ dynamic ≡ event-skip, bit-for-bit, across the
//! state-blind dispatchers. The cohort split itself is gated: every
//! device's stats show the full horizon (no member lost or duplicated
//! when the fleet splits into cohorts plus dynamic stragglers), and the
//! fleet totals remain the *device-order* fold of per-device stats no
//! matter how cohort boundaries regroup execution.

use proptest::prelude::*;
use qdpm_device::presets;
use qdpm_sim::fleet::{FleetConfig, FleetMember, FleetPolicy, FleetReport, FleetSim};
use qdpm_sim::hierarchy::{ClusterConfig, ClusterSim, RackCoordinator, RackSpec, CAP_EPS};
use qdpm_sim::{EngineMode, RunStats, ScenarioWorkload, SimConfig};
use qdpm_workload::{DispatchPolicy, WorkloadSpec};

/// The mixed-preset pool fleets draw from.
fn preset_pool() -> Vec<(String, qdpm_device::PowerModel)> {
    ["three-state-generic", "two-state", "ibm-hdd", "wlan-card"]
        .iter()
        .map(|name| {
            (
                (*name).to_string(),
                presets::by_name(name).expect("known preset"),
            )
        })
        .collect()
}

/// Builds a mixed fleet: device presets and exact policies cycled from
/// the given offsets. Shared-table members are pinned to the generic
/// three-state device so their table dimensions agree regardless of the
/// preset cycle.
fn mixed_members(size: usize, policy_offset: usize, preset_offset: usize) -> Vec<FleetMember> {
    let presets_pool = preset_pool();
    let policies = FleetPolicy::all_exact();
    (0..size)
        .map(|i| {
            let policy = policies[(policy_offset + i) % policies.len()].clone();
            let (label, power) = if matches!(policy, FleetPolicy::SharedQDpm(_)) {
                (
                    "three-state-generic".to_string(),
                    presets::three_state_generic(),
                )
            } else {
                presets_pool[(preset_offset + i) % presets_pool.len()].clone()
            };
            FleetMember {
                label: format!("{label}-{i}"),
                power,
                service: presets::default_service(),
                policy,
            }
        })
        .collect()
}

/// Like [`mixed_members`], but cycling only the online-safe exact
/// policies (no clairvoyant oracles) — the population for online-dispatch
/// and rack fleets, where no precomputed per-device trace exists.
fn mixed_online_members(
    size: usize,
    policy_offset: usize,
    preset_offset: usize,
) -> Vec<FleetMember> {
    let presets_pool = preset_pool();
    let policies = FleetPolicy::all_online_exact();
    (0..size)
        .map(|i| {
            let policy = policies[(policy_offset + i) % policies.len()].clone();
            let (label, power) = if matches!(policy, FleetPolicy::SharedQDpm(_)) {
                (
                    "three-state-generic".to_string(),
                    presets::three_state_generic(),
                )
            } else {
                presets_pool[(preset_offset + i) % presets_pool.len()].clone()
            };
            FleetMember {
                label: format!("{label}-{i}"),
                power,
                service: presets::default_service(),
                policy,
            }
        })
        .collect()
}

fn aggregate_workload(kind: usize, rate: f64) -> ScenarioWorkload {
    match kind {
        0 => ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(rate).unwrap()),
        1 => ScenarioWorkload::Stationary(
            WorkloadSpec::two_mode_mmpp(rate * 0.2, (rate * 4.0).min(0.9), 0.01).unwrap(),
        ),
        _ => ScenarioWorkload::Piecewise(vec![
            (700, WorkloadSpec::bernoulli(rate).unwrap()),
            (500, WorkloadSpec::bernoulli((rate * 3.0).min(0.9)).unwrap()),
        ]),
    }
}

fn dispatcher(id: usize) -> DispatchPolicy {
    DispatchPolicy::all()[id % DispatchPolicy::all().len()]
}

fn run_fleet(
    members: &[FleetMember],
    workload: &ScenarioWorkload,
    dispatch: DispatchPolicy,
    mode: EngineMode,
    horizon: u64,
    seed: u64,
    threads: usize,
) -> FleetReport {
    FleetSim::new(
        members,
        workload,
        &FleetConfig {
            seed,
            engine_mode: mode,
            dispatch,
            horizon,
            ..FleetConfig::default()
        },
    )
    .expect("fleet builds")
    .run(threads)
}

/// Like [`run_fleet`] but forces the online dispatch loop even for
/// state-blind dispatchers.
fn run_online(
    members: &[FleetMember],
    workload: &ScenarioWorkload,
    dispatch: DispatchPolicy,
    mode: EngineMode,
    horizon: u64,
    seed: u64,
    threads: usize,
) -> FleetReport {
    FleetSim::new(
        members,
        workload,
        &FleetConfig {
            seed,
            engine_mode: mode,
            dispatch,
            horizon,
            force_online: true,
            ..FleetConfig::default()
        },
    )
    .expect("online fleet builds")
    .run(threads)
}

/// Left fold of per-device stats in device order — the defined
/// aggregation `FleetStats::total` must match bit-for-bit.
fn manual_fold(per_device: &[RunStats]) -> RunStats {
    let mut total = RunStats::new();
    for stats in per_device {
        total.merge(stats);
    }
    total
}

fn assert_conservation(report: &FleetReport, dispatched: u64) {
    // Partition: no aggregate arrival lost or duplicated.
    assert_eq!(report.stats.total.arrivals, dispatched);
    // Fold: fleet totals are exactly the ordered fold of device stats.
    let fold = manual_fold(&report.per_device);
    assert_eq!(report.stats.total, fold);
    assert_eq!(
        report.stats.total.total_energy.to_bits(),
        fold.total_energy.to_bits()
    );
    assert_eq!(
        report.stats.total.total_cost.to_bits(),
        fold.total_cost.to_bits()
    );
}

/// Builds a fleet of `templates` member templates, each repeated
/// `repeat` times consecutively — the population for cohort-batching
/// tests, where repeated templates form homogeneous groups the batched
/// engine is expected to pick up.
fn templated_members(
    templates: usize,
    repeat: usize,
    policy_offset: usize,
    preset_offset: usize,
) -> Vec<FleetMember> {
    let presets_pool = preset_pool();
    let policies = FleetPolicy::all_exact();
    let mut members = Vec::with_capacity(templates * repeat);
    for t in 0..templates {
        let policy = policies[(policy_offset + t) % policies.len()].clone();
        let (label, power) = if matches!(policy, FleetPolicy::SharedQDpm(_)) {
            (
                "three-state-generic".to_string(),
                presets::three_state_generic(),
            )
        } else {
            presets_pool[(preset_offset + t) % presets_pool.len()].clone()
        };
        for r in 0..repeat {
            members.push(FleetMember {
                label: format!("{label}-{t}-{r}"),
                power: power.clone(),
                service: presets::default_service(),
                policy: policy.clone(),
            });
        }
    }
    members
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random mixed fleets: `PerSlice` and `EventSkip` agree exactly on
    /// the full `FleetStats` (totals bit-for-bit, percentiles, occupancy)
    /// across every dispatcher and all ten exact policies, at any thread
    /// count — and both satisfy the conservation laws.
    #[test]
    fn fleet_event_skip_is_exact_on_random_fleets(
        size in 1usize..14,
        policy_offset in 0usize..10,
        preset_offset in 0usize..4,
        dispatch_id in 0usize..3,
        workload_kind in 0usize..3,
        rate in 0.02f64..0.6,
        horizon in 300u64..2_500,
        seed in 0u64..10_000,
        threads in 1usize..5,
    ) {
        let members = mixed_members(size, policy_offset, preset_offset);
        let workload = aggregate_workload(workload_kind, rate);
        let dispatch = dispatcher(dispatch_id);
        let per = run_fleet(&members, &workload, dispatch, EngineMode::PerSlice,
                            horizon, seed, 1);
        let skip = run_fleet(&members, &workload, dispatch, EngineMode::EventSkip,
                             horizon, seed, threads);
        prop_assert_eq!(&per.stats, &skip.stats);
        prop_assert_eq!(&per.per_device, &skip.per_device);
        prop_assert_eq!(&per.final_modes, &skip.final_modes);

        let dispatched = FleetSim::new(&members, &workload, &FleetConfig {
            seed, dispatch, horizon, ..FleetConfig::default()
        }).unwrap().dispatched_arrivals();
        assert_conservation(&per, dispatched);
        assert_conservation(&skip, dispatched);
    }

    /// Random fleets with repeated member templates: the batched cohort
    /// engine (`batch_cohorts: true`, the default) reproduces the
    /// dynamic per-device path bit-for-bit — full `FleetReport` equality
    /// (per-device `RunStats`, final modes, aggregate `FleetStats`) — at
    /// 1 and N threads, and both agree exactly with `EventSkip` (which
    /// never batches), across every state-blind dispatcher.
    ///
    /// The cohort split is gated structurally in the same sweep: every
    /// device's stats carry the full horizon (no member lost or
    /// duplicated when the fleet regroups into cohorts plus dynamic
    /// stragglers), and conservation pins the fleet totals to the
    /// device-order fold regardless of cohort boundaries.
    #[test]
    fn batched_cohorts_equal_dynamic_on_random_fleets(
        templates in 1usize..4,
        repeat in 2usize..6,
        policy_offset in 0usize..10,
        preset_offset in 0usize..4,
        dispatch_id in 0usize..3,
        workload_kind in 0usize..3,
        rate in 0.02f64..0.6,
        horizon in 300u64..2_000,
        seed in 0u64..10_000,
        threads in 2usize..5,
    ) {
        let members = templated_members(templates, repeat, policy_offset, preset_offset);
        let workload = aggregate_workload(workload_kind, rate);
        let dispatch = dispatcher(dispatch_id);
        let config = |batch: bool, mode: EngineMode| FleetConfig {
            seed, dispatch, horizon, engine_mode: mode, batch_cohorts: batch,
            ..FleetConfig::default()
        };
        let build = |cfg: &FleetConfig| {
            FleetSim::new(&members, &workload, cfg).expect("fleet builds")
        };

        let batched_fleet = build(&config(true, EngineMode::PerSlice));
        let any_batchable = members.iter().any(|m| qdpm_sim::is_batchable(&m.policy));
        prop_assert_eq!(batched_fleet.batched_cohorts() > 0, any_batchable);
        let dispatched = batched_fleet.dispatched_arrivals();

        let batched_serial = batched_fleet.run(1);
        let batched_threaded = build(&config(true, EngineMode::PerSlice)).run(threads);
        let dynamic_fleet = build(&config(false, EngineMode::PerSlice));
        prop_assert_eq!(dynamic_fleet.batched_cohorts(), 0);
        prop_assert_eq!(dynamic_fleet.dispatched_arrivals(), dispatched);
        let dynamic = dynamic_fleet.run(1);
        let skip = build(&config(true, EngineMode::EventSkip)).run(threads);

        prop_assert_eq!(&batched_serial, &batched_threaded);
        prop_assert_eq!(&batched_serial, &dynamic);
        prop_assert_eq!(&batched_serial.stats, &skip.stats);
        prop_assert_eq!(&batched_serial.per_device, &skip.per_device);
        prop_assert_eq!(&batched_serial.final_modes, &skip.final_modes);

        // Cohort split structure: the report covers every member exactly
        // once, each with the full horizon of simulated slices.
        prop_assert_eq!(batched_serial.per_device.len(), members.len());
        for stats in &batched_serial.per_device {
            prop_assert_eq!(stats.steps, horizon);
        }
        assert_conservation(&batched_serial, dispatched);
    }

    /// Random fleets under the *online* dispatch loop, across every
    /// dispatcher (state-blind and state-aware): `PerSlice` and
    /// `EventSkip` agree exactly, results are thread-count-invariant,
    /// conservation holds, and a state-blind dispatcher run online
    /// reproduces its precomputed split bit-for-bit.
    #[test]
    fn online_dispatch_is_engine_and_thread_exact_on_random_fleets(
        size in 1usize..12,
        policy_offset in 0usize..8,
        preset_offset in 0usize..4,
        dispatch_id in 0usize..5,
        workload_kind in 0usize..3,
        rate in 0.02f64..0.6,
        horizon in 300u64..2_000,
        seed in 0u64..10_000,
        threads in 2usize..5,
    ) {
        let members = mixed_online_members(size, policy_offset, preset_offset);
        let workload = aggregate_workload(workload_kind, rate);
        let dispatch = DispatchPolicy::all()[dispatch_id % DispatchPolicy::all().len()];

        let reference = run_online(&members, &workload, dispatch,
                                   EngineMode::PerSlice, horizon, seed, 1);
        let per_threaded = run_online(&members, &workload, dispatch,
                                      EngineMode::PerSlice, horizon, seed, threads);
        let skip_serial = run_online(&members, &workload, dispatch,
                                     EngineMode::EventSkip, horizon, seed, 1);
        let skip_threaded = run_online(&members, &workload, dispatch,
                                       EngineMode::EventSkip, horizon, seed, threads);
        prop_assert_eq!(&reference, &per_threaded);
        prop_assert_eq!(&reference, &skip_serial);
        prop_assert_eq!(&reference, &skip_threaded);

        let dispatched = FleetSim::new(&members, &workload, &FleetConfig {
            seed, dispatch, horizon, force_online: true, ..FleetConfig::default()
        }).unwrap().dispatched_arrivals();
        assert_conservation(&reference, dispatched);

        if dispatch.is_state_blind() {
            let preplanned = run_fleet(&members, &workload, dispatch,
                                       EngineMode::PerSlice, horizon, seed, 1);
            prop_assert_eq!(&reference, &preplanned);
        }
    }

    /// Power-cap conservation on randomized capped racks: the summed rack
    /// draw stays `<= cap + CAP_EPS` in every single slice, arrivals are
    /// conserved, the per-slice probed run reproduces the segmented run,
    /// and capped racks stay engine-exact and thread-invariant.
    #[test]
    fn capped_rack_never_exceeds_cap_on_random_racks(
        size in 1usize..9,
        policy_offset in 0usize..8,
        preset_offset in 0usize..4,
        dispatch_id in 0usize..5,
        workload_kind in 0usize..3,
        rate in 0.05f64..0.6,
        headroom in 0.02f64..1.3,
        horizon in 300u64..1_500,
        seed in 0u64..10_000,
        threads in 2usize..5,
    ) {
        let members = mixed_online_members(size, policy_offset, preset_offset);
        let floor: f64 = members.iter()
            .map(|m| m.power.state(m.power.lowest_power_state()).power)
            .sum();
        let peak: f64 = members.iter()
            .map(|m| m.power.state(m.power.highest_power_state()).power)
            .sum();
        let cap = (floor + headroom * (peak - floor + 0.1)).max(0.05);
        let spec = RackSpec {
            label: "rack".to_string(),
            members,
            power_cap: Some(cap),
        };
        let workload = aggregate_workload(workload_kind, rate);
        let dispatch = DispatchPolicy::all()[dispatch_id % DispatchPolicy::all().len()];
        let config = |mode| FleetConfig {
            seed, dispatch, horizon, engine_mode: mode, ..FleetConfig::default()
        };

        let (probed, per_slice) = RackCoordinator::new(&spec, &config(EngineMode::PerSlice))
            .unwrap()
            .run_probed(&workload)
            .unwrap();
        prop_assert_eq!(per_slice.len() as u64, horizon);
        for (slice, &energy) in per_slice.iter().enumerate() {
            prop_assert!(
                energy <= cap + CAP_EPS,
                "slice {} draws {} > cap {}", slice, energy, cap
            );
        }
        // Conservation against an independent redraw of the aggregate:
        // shedding reroutes arrivals and vetoes only delay wakes — the
        // cap never loses a request at the routing layer.
        let direct: u64 = {
            use rand::SeedableRng;
            let mut gen = workload.build().unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            (0..horizon).map(|_| u64::from(gen.next_arrivals(&mut rng))).sum()
        };
        assert_conservation(&probed.fleet, direct);

        let segmented = RackCoordinator::new(&spec, &config(EngineMode::PerSlice))
            .unwrap()
            .run(&workload, threads)
            .unwrap();
        prop_assert_eq!(&probed, &segmented);
        let skip = RackCoordinator::new(&spec, &config(EngineMode::EventSkip))
            .unwrap()
            .run(&workload, threads)
            .unwrap();
        prop_assert_eq!(&probed, &skip);
    }
}

/// Pinned exact case per state-blind dispatcher: a 10-device fleet
/// carrying every exact policy kind exactly once (including the
/// clairvoyant oracles, which need the precomputed split), on a bursty
/// MMPP aggregate. This is the acceptance gate's canonical scenario:
/// at least 9 policies x all state-blind dispatchers, `PerSlice` ==
/// `EventSkip` exactly.
#[test]
fn fleet_event_skip_pinned_all_policies_all_dispatchers() {
    let policies = FleetPolicy::all_exact();
    assert!(policies.len() >= 9, "gate requires >= 9 policies");
    let members = mixed_members(policies.len(), 0, 0);
    let workload = aggregate_workload(1, 0.3);
    for dispatch in DispatchPolicy::state_blind() {
        let per = run_fleet(
            &members,
            &workload,
            dispatch,
            EngineMode::PerSlice,
            6_000,
            17,
            1,
        );
        let skip = run_fleet(
            &members,
            &workload,
            dispatch,
            EngineMode::EventSkip,
            6_000,
            17,
            4,
        );
        assert_eq!(per.stats, skip.stats, "{}", dispatch.name());
        assert_eq!(per.per_device, skip.per_device, "{}", dispatch.name());
    }
}

/// Pinned batched case: 12-device homogeneous Q-DPM fleets — the batched
/// engine's canonical workload — per state-blind dispatcher. The
/// *training* fleet (live epsilon-greedy exploration) pins batched ≡
/// dynamic with full report equality at 1 and 4 threads; the *frozen*
/// fleet (the exact policy) additionally pins both against `EventSkip`,
/// which never batches.
#[test]
fn batched_cohort_pinned_homogeneous_q_dpm_all_dispatchers() {
    let fleet_of = |policy: FleetPolicy| -> Vec<FleetMember> {
        (0..12)
            .map(|i| FleetMember {
                label: format!("qdpm-{i}"),
                power: presets::three_state_generic(),
                service: presets::default_service(),
                policy: policy.clone(),
            })
            .collect()
    };
    let workload = aggregate_workload(1, 0.35);
    for dispatch in DispatchPolicy::state_blind() {
        let config = |batch: bool, mode: EngineMode| FleetConfig {
            seed: 11,
            dispatch,
            horizon: 4_000,
            engine_mode: mode,
            batch_cohorts: batch,
            ..FleetConfig::default()
        };
        // Training fleet: batched ≡ dynamic under live exploration.
        let members = fleet_of(FleetPolicy::QDpm(qdpm_core::QDpmConfig::default()));
        let batched = FleetSim::new(&members, &workload, &config(true, EngineMode::PerSlice))
            .expect("fleet builds");
        assert_eq!(batched.batched_cohorts(), 1, "{}", dispatch.name());
        let batched = batched.run(1);
        let batched_threaded =
            FleetSim::new(&members, &workload, &config(true, EngineMode::PerSlice))
                .expect("fleet builds")
                .run(4);
        let dynamic = FleetSim::new(&members, &workload, &config(false, EngineMode::PerSlice))
            .expect("fleet builds")
            .run(4);
        assert_eq!(batched, batched_threaded, "{}", dispatch.name());
        assert_eq!(batched, dynamic, "{}", dispatch.name());

        // Frozen fleet: the exact policy, so event-skip joins the
        // three-way equality.
        let members = fleet_of(FleetPolicy::frozen_q_dpm());
        let batched = FleetSim::new(&members, &workload, &config(true, EngineMode::PerSlice))
            .expect("fleet builds")
            .run(1);
        let dynamic = FleetSim::new(&members, &workload, &config(false, EngineMode::PerSlice))
            .expect("fleet builds")
            .run(4);
        let skip = FleetSim::new(&members, &workload, &config(true, EngineMode::EventSkip))
            .expect("fleet builds")
            .run(4);
        assert_eq!(batched, dynamic, "frozen {}", dispatch.name());
        assert_eq!(batched.stats, skip.stats, "frozen {}", dispatch.name());
        assert_eq!(
            batched.per_device,
            skip.per_device,
            "frozen {}",
            dispatch.name()
        );
    }
}

/// Pinned online counterpart: every dispatcher (state-blind ones forced
/// online, plus join-shortest-queue and sleep-aware) over a fleet cycling
/// every online-safe exact policy — `PerSlice` serial == `EventSkip`
/// threaded, bit-for-bit.
#[test]
fn fleet_online_pinned_all_policies_all_dispatchers() {
    let policies = FleetPolicy::all_online_exact();
    assert!(
        policies.len() >= 8,
        "gate requires >= 8 online-safe policies"
    );
    let members = mixed_online_members(policies.len(), 0, 0);
    let workload = aggregate_workload(1, 0.3);
    for dispatch in DispatchPolicy::all() {
        let per = run_online(
            &members,
            &workload,
            dispatch,
            EngineMode::PerSlice,
            6_000,
            17,
            1,
        );
        let skip = run_online(
            &members,
            &workload,
            dispatch,
            EngineMode::EventSkip,
            6_000,
            17,
            4,
        );
        assert_eq!(per.stats, skip.stats, "{}", dispatch.name());
        assert_eq!(per.per_device, skip.per_device, "{}", dispatch.name());
    }
}

/// A two-level cluster (racks under caps, rack-level dispatch) is
/// engine-exact and thread-count-invariant, and conserves the aggregate
/// stream across both dispatch levels.
#[test]
fn cluster_is_engine_exact_and_conserves_arrivals() {
    let rack = |n: usize, cap: Option<f64>, offset: usize| RackSpec {
        label: format!("rack-{offset}"),
        members: mixed_online_members(n, offset, offset),
        power_cap: cap,
    };
    let specs = vec![
        rack(3, Some(5.0), 0),
        rack(2, None, 2),
        rack(4, Some(6.0), 5),
    ];
    let workload = aggregate_workload(1, 0.5);
    let run = |mode, threads| {
        ClusterSim::new(
            &specs,
            &workload,
            &ClusterConfig {
                rack_dispatch: DispatchPolicy::JoinShortestQueue,
                fleet: FleetConfig {
                    seed: 29,
                    horizon: 3_000,
                    dispatch: DispatchPolicy::SleepAware { spill: 4 },
                    engine_mode: mode,
                    ..FleetConfig::default()
                },
            },
        )
        .unwrap()
        .run(threads)
    };
    let reference = run(EngineMode::PerSlice, 1);
    assert_eq!(reference, run(EngineMode::PerSlice, 4));
    assert_eq!(reference, run(EngineMode::EventSkip, 1));
    assert_eq!(reference, run(EngineMode::EventSkip, 4));

    let dispatched = ClusterSim::new(
        &specs,
        &workload,
        &ClusterConfig {
            rack_dispatch: DispatchPolicy::JoinShortestQueue,
            fleet: FleetConfig {
                seed: 29,
                horizon: 3_000,
                dispatch: DispatchPolicy::SleepAware { spill: 4 },
                ..FleetConfig::default()
            },
        },
    )
    .unwrap()
    .dispatched_arrivals();
    assert_eq!(reference.stats.total.arrivals, dispatched);
    for rack_report in &reference.racks {
        assert_conservation(&rack_report.fleet, rack_report.fleet.stats.total.arrivals);
    }
}

/// The fleet's per-device accounting is the single-device simulator's: a
/// one-member fleet reproduces a standalone `Simulator` run over the same
/// dispatched trace, stat for stat.
#[test]
fn one_member_fleet_matches_standalone_simulator() {
    let members = mixed_members(1, 2, 0); // break-even timeout on 3-state
    let workload = aggregate_workload(0, 0.25);
    let horizon = 4_000u64;
    let seed = 5u64;
    let report = run_fleet(
        &members,
        &workload,
        DispatchPolicy::RoundRobin,
        EngineMode::PerSlice,
        horizon,
        seed,
        1,
    );

    // Rebuild the identical dispatched trace by hand: with one device,
    // the dispatch is the aggregate stream itself.
    use rand::SeedableRng;
    let mut gen = workload.build().unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut dispatcher =
        qdpm_workload::WorkloadDispatcher::new(DispatchPolicy::RoundRobin, 1).unwrap();
    let trace = dispatcher.split(gen.as_mut(), &mut rng, horizon).remove(0);

    let power = presets::three_state_generic();
    let pm = qdpm_sim::policies::FixedTimeout::break_even(&power);
    let mut sim = qdpm_sim::Simulator::new(
        power,
        presets::default_service(),
        Box::new(trace),
        Box::new(pm),
        SimConfig {
            seed: qdpm_sim::derive_cell_seed(seed, 0),
            ..SimConfig::default()
        },
    )
    .unwrap();
    let standalone = sim.run(horizon);
    assert_eq!(report.per_device[0], standalone);
    assert_eq!(report.stats.total, standalone);
}

/// Conservation against an independent re-draw of the aggregate stream:
/// the dispatched total is exactly what the aggregate generator emits
/// over the horizon (the dispatcher invents and loses nothing), and the
/// fleet's simulated arrivals agree.
#[test]
fn fleet_arrivals_equal_independent_aggregate_redraw() {
    use rand::SeedableRng;
    let seed = 23u64;
    let horizon = 5_000u64;
    let workload = aggregate_workload(1, 0.4);
    for dispatch in DispatchPolicy::all() {
        // Oracle members need the precomputed split; online (state-aware)
        // dispatchers get the online-safe policy population instead.
        let members = if dispatch.is_state_blind() {
            mixed_members(6, 1, 1)
        } else {
            mixed_online_members(6, 1, 1)
        };
        let fleet = FleetSim::new(
            &members,
            &workload,
            &FleetConfig {
                seed,
                dispatch,
                horizon,
                ..FleetConfig::default()
            },
        )
        .unwrap();
        let dispatched = fleet.dispatched_arrivals();

        // Same seed, same spec: the aggregate stream re-drawn directly.
        let mut gen = workload.build().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let direct: u64 = (0..horizon)
            .map(|_| u64::from(gen.next_arrivals(&mut rng)))
            .sum();
        assert_eq!(dispatched, direct, "{}", dispatch.name());

        let report = fleet.run(3);
        assert_eq!(report.stats.total.arrivals, direct, "{}", dispatch.name());
        assert_conservation(&report, direct);
    }
}

/// Shared-table fleets conform too: the serialized (forced single-thread)
/// execution is engine-exact, and pooling actually happened (the shared
/// members' devices all contributed updates to one table).
#[test]
fn shared_table_fleet_is_engine_exact() {
    let members: Vec<FleetMember> = (0..5)
        .map(|i| FleetMember {
            label: format!("shared-{i}"),
            power: presets::three_state_generic(),
            service: presets::default_service(),
            policy: FleetPolicy::frozen_shared_q_dpm(),
        })
        .collect();
    let workload = aggregate_workload(0, 0.3);
    let per = run_fleet(
        &members,
        &workload,
        DispatchPolicy::LeastLoaded,
        EngineMode::PerSlice,
        5_000,
        3,
        4,
    );
    let skip = run_fleet(
        &members,
        &workload,
        DispatchPolicy::LeastLoaded,
        EngineMode::EventSkip,
        5_000,
        3,
        4,
    );
    assert_eq!(per.stats, skip.stats);
    assert_eq!(per.per_device, skip.per_device);
}
