//! Q-table persistence: checkpoint a trained policy and warm-start after a
//! "reboot" — the deployment story for the paper's tight-budget embedded
//! nodes, where re-exploring from scratch after every power cycle would
//! waste the very energy DPM is meant to save.
//!
//! Run with: `cargo run --release --example warm_start`

use qdpm::core::{PowerManager, QDpmAgent, QDpmConfig, StepOutcome};
use qdpm::device::{presets, Device, Queue, Server};
use qdpm::sim::{SimConfig, Simulator};
use qdpm::workload::WorkloadSpec;
use rand::{RngCore as _, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let power = presets::three_state_generic();
    let spec = WorkloadSpec::bernoulli(0.05)?;

    // ---- First boot: learn online, then checkpoint. --------------------
    // (Hand-rolled loop so we keep the typed agent for export.)
    let mut agent = QDpmAgent::new(&power, QDpmConfig::default())?;
    {
        let mut device = Device::new(power.clone());
        let mut queue = Queue::new(8)?;
        let mut server = Server::new(presets::default_service());
        let mut gen = spec.build();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut idle = 0u64;
        for now in 0..150_000u64 {
            let obs = qdpm::core::Observation {
                device_mode: device.mode(),
                queue_len: queue.len(),
                idle_slices: idle,
                sr_mode_hint: None,
            };
            let cmd = agent.decide(&obs, &mut rng);
            let cmd_energy = device.command(cmd).immediate_energy();
            let arrivals = gen.next_arrivals(&mut rng);
            let mut dropped = 0;
            for _ in 0..arrivals {
                if !queue.push(now) {
                    dropped += 1;
                }
            }
            idle = if arrivals > 0 { 0 } else { idle + 1 };
            let tick = device.tick();
            let mut completed = 0;
            if tick.can_serve && !queue.is_empty() {
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                if server.advance(u) {
                    queue.pop(now);
                    completed = 1;
                }
            }
            agent.observe(
                &StepOutcome {
                    energy: cmd_energy + tick.energy,
                    queue_len: queue.len(),
                    dropped,
                    completed,
                    arrivals,
                    deadline_misses: 0,
                },
                &qdpm::core::Observation {
                    device_mode: device.mode(),
                    queue_len: queue.len(),
                    idle_slices: idle,
                    sr_mode_hint: None,
                },
            );
        }
    }
    let checkpoint = agent.export_table();
    println!(
        "checkpoint: {} bytes (fits flash on any node)",
        checkpoint.len()
    );

    // ---- Reboot: warm vs cold on the identical workload. ---------------
    let mut warm = QDpmAgent::new(&power, QDpmConfig::default())?;
    warm.import_table(&checkpoint)?;
    let mut warm_sim = Simulator::new(
        power.clone(),
        presets::default_service(),
        spec.build(),
        Box::new(warm),
        SimConfig {
            seed: 3,
            ..SimConfig::default()
        },
    )?;
    let warm_stats = warm_sim.run(20_000);

    let cold = QDpmAgent::new(&power, QDpmConfig::default())?;
    let mut cold_sim = Simulator::new(
        power.clone(),
        presets::default_service(),
        spec.build(),
        Box::new(cold),
        SimConfig {
            seed: 3,
            ..SimConfig::default()
        },
    )?;
    let cold_stats = cold_sim.run(20_000);

    let p_on = power.state(power.highest_power_state()).power;
    println!("\nfirst 20k slices after reboot:");
    println!(
        "  warm start: cost/slice {:.4}, energy reduction {:.1}%",
        warm_stats.avg_cost(),
        100.0 * warm_stats.energy_reduction_vs(p_on)
    );
    println!(
        "  cold start: cost/slice {:.4}, energy reduction {:.1}%",
        cold_stats.avg_cost(),
        100.0 * cold_stats.energy_reduction_vs(p_on)
    );
    println!("\nthe warm node skips the exploratory transient entirely.");
    Ok(())
}
