//! Quickstart: train a Q-DPM agent on a generic three-state device and
//! compare its energy/latency against the classic heuristics.
//!
//! Run with: `cargo run --release --example quickstart`

use qdpm::core::{PowerManager, QDpmAgent, QDpmConfig};
use qdpm::device::presets;
use qdpm::sim::{policies, SimConfig, Simulator};
use qdpm::workload::WorkloadSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let power = presets::three_state_generic();
    let service = presets::default_service();
    let spec = WorkloadSpec::bernoulli(0.05)?;
    let horizon = 200_000;
    let p_on = power.state(power.highest_power_state()).power;

    println!("device: {} ({} states)", power.name(), power.n_states());
    println!("workload: bernoulli p=0.05, horizon {horizon} slices\n");
    println!(
        "{:<18} {:>10} {:>12} {:>10} {:>8}",
        "policy", "avg power", "reduction", "mean wait", "drops"
    );

    let run = |pm: Box<dyn PowerManager>| -> Result<(), Box<dyn std::error::Error>> {
        let name = pm.name().to_string();
        let mut sim = Simulator::new(
            power.clone(),
            service,
            spec.build(),
            pm,
            SimConfig {
                seed: 42,
                ..SimConfig::default()
            },
        )?;
        let stats = sim.run(horizon);
        println!(
            "{:<18} {:>10.4} {:>11.1}% {:>10.2} {:>8}",
            name,
            stats.avg_power(),
            100.0 * stats.energy_reduction_vs(p_on),
            stats.mean_wait(),
            stats.dropped
        );
        Ok(())
    };

    run(Box::new(policies::AlwaysOn::new(&power)))?;
    run(Box::new(policies::GreedyOff::new(&power)))?;
    run(Box::new(policies::FixedTimeout::break_even(&power)))?;
    run(Box::new(policies::AdaptiveTimeout::new(&power)))?;
    run(Box::new(QDpmAgent::new(&power, QDpmConfig::default())?))?;

    println!("\nQ-DPM learns online; the first slices are exploratory, so");
    println!("longer horizons close the gap to the model-based optimum");
    println!("(see `cargo run -p qdpm-bench --bin fig1`).");
    Ok(())
}
