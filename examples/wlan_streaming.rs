//! WLAN interface under a streaming workload: QoS-constrained power saving.
//!
//! An 802.11 card (10 ms slices) alternates between streaming bursts and
//! background chatter — a two-mode MMPP. Doze mode saves 20x the listen
//! power but wakes over several beacon slices, so a latency-blind agent
//! would doze too eagerly and stutter the stream. We compare plain Q-DPM,
//! QoS-guaranteed Q-DPM with a queue bound, and the break-even timeout.
//!
//! Run with: `cargo run --release --example wlan_streaming`

use qdpm::core::{PowerManager, QDpmAgent, QDpmConfig, QosConfig, QosQDpmAgent};
use qdpm::device::presets;
use qdpm::sim::{policies, RunStats, SimConfig, Simulator};
use qdpm::workload::WorkloadSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let power = presets::wlan_card();
    // A NIC drains its queue fast relative to 10 ms slices.
    let service = qdpm::device::ServiceModel::geometric(0.9)?;
    // Streaming burst mode (packets most slices) vs background chatter.
    let spec = WorkloadSpec::two_mode_mmpp(0.01, 0.45, 0.002)?;
    let horizon = 400_000u64; // 400k x 10 ms = ~67 minutes
    let p_on = power.state(power.highest_power_state()).power;
    let queue_bound = 1.0;

    println!(
        "device: {} | workload: streaming MMPP | {} slices",
        power.name(),
        horizon
    );
    println!("QoS bound: average queue <= {queue_bound}\n");
    println!(
        "{:<18} {:>11} {:>11} {:>11} {:>9}",
        "policy", "avg power", "reduction", "avg queue", "in bound"
    );

    let run = |pm: Box<dyn PowerManager>| -> Result<RunStats, Box<dyn std::error::Error>> {
        let name = pm.name().to_string();
        let mut sim = Simulator::new(
            power.clone(),
            service,
            spec.build(),
            pm,
            SimConfig {
                seed: 8,
                ..SimConfig::default()
            },
        )?;
        sim.run(horizon / 2); // warm-up / learning
        let stats = sim.run(horizon / 2);
        println!(
            "{:<18} {:>11.5} {:>10.1}% {:>11.3} {:>9}",
            name,
            stats.avg_power(),
            100.0 * stats.energy_reduction_vs(p_on),
            stats.avg_queue_len(),
            if stats.avg_queue_len() <= queue_bound * 1.15 {
                "yes"
            } else {
                "NO"
            }
        );
        Ok(stats)
    };

    run(Box::new(policies::AlwaysOn::new(&power)))?;
    run(Box::new(policies::FixedTimeout::break_even(&power)))?;
    run(Box::new(QDpmAgent::new(&power, QDpmConfig::default())?))?;
    run(Box::new(QosQDpmAgent::new(
        &power,
        QosConfig {
            perf_target: queue_bound,
            ..QosConfig::default()
        },
    )?))?;

    println!("\nThe QoS agent holds the stream's queue bound while dozing through");
    println!("the chatter; the plain agent optimizes its fixed energy/latency");
    println!("trade-off instead, whatever queue that implies.");
    Ok(())
}
