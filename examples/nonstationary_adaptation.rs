//! Nonstationary adaptation (the Fig. 2 story, interactively).
//!
//! A piecewise-stationary workload switches rate four times. Q-DPM keeps
//! adapting every slice; the model-based pipeline must detect the switch,
//! re-estimate, and re-optimize — and runs a stale policy in the meantime.
//!
//! Run with: `cargo run --release --example nonstationary_adaptation`

use qdpm::device::presets;
use qdpm::sim::experiment::{run_rapid_response, RapidResponseParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let power = presets::three_state_generic();
    let service = presets::default_service();
    let params = RapidResponseParams {
        segments: vec![
            (40_000, 0.02),
            (40_000, 0.25),
            (40_000, 0.05),
            (40_000, 0.15),
        ],
        window: 4_000,
        ..RapidResponseParams::default()
    };
    let report = run_rapid_response(&power, &service, &params)?;

    println!("switch points at slices: {:?}", report.switch_points);
    println!(
        "model-based pipeline re-optimized {} times\n",
        report.model_based_resolves
    );
    println!(
        "{:>8} {:>12} {:>14} {:>14}",
        "slice", "q-dpm", "model-based", "clairvoyant"
    );
    for ((q, m), c) in report
        .qdpm
        .iter()
        .zip(&report.model_based)
        .zip(&report.clairvoyant)
    {
        let marker = report
            .switch_points
            .iter()
            .any(|&s| s >= q.end.saturating_sub(params.window) && s < q.end);
        println!(
            "{:>8} {:>12.4} {:>14.4} {:>14.4} {}",
            q.end,
            q.cost_per_slice,
            m.cost_per_slice,
            c.cost_per_slice,
            if marker { "<-- switch" } else { "" }
        );
    }
    println!("\ncost = energy + weighted latency, per slice (lower is better).");
    println!("Watch the model-based column stay high after each switch while");
    println!("Q-DPM recovers within a couple of windows.");
    Ok(())
}
