//! Fuzzy Q-DPM in a noisy environment (the paper's future-work item).
//!
//! A heavy-tailed (Pareto) workload makes idle time genuinely informative:
//! the longer the silence, the longer it is likely to continue, so a good
//! policy conditions on it. The PM's sensors misread the queue depth and
//! jitter the idle timer; crisp Q-DPM keys threshold buckets on the noisy
//! values, while Fuzzy Q-DPM's overlapping membership functions both
//! generalize over the continuous feature and absorb the noise.
//!
//! Run with: `cargo run --release --example noisy_fuzzy`

use qdpm::core::{FuzzyConfig, FuzzyQDpmAgent, QDpmAgent, QDpmConfig};
use qdpm::device::presets;
use qdpm::sim::{ObservationNoise, SimConfig, Simulator};
use qdpm::workload::WorkloadSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let power = presets::three_state_generic();
    let service = presets::default_service();
    let spec = WorkloadSpec::Pareto {
        alpha: 1.6,
        xm: 4.0,
    };
    let horizon = 200_000;
    let p_on = power.state(power.highest_power_state()).power;

    println!(
        "{:>22} {:>12} {:>12} {:>12}",
        "queue-misread prob", "crisp cost", "fuzzy cost", "fuzzy wins?"
    );
    for noise_p in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let noise = ObservationNoise {
            queue_misread_prob: noise_p,
            idle_jitter: 4,
        };

        let crisp = QDpmAgent::new(
            &power,
            QDpmConfig {
                idle_thresholds: vec![2, 4, 8, 16, 32],
                ..QDpmConfig::default()
            },
        )?;
        let mut sim = Simulator::new(
            power.clone(),
            service,
            spec.build(),
            Box::new(crisp),
            SimConfig {
                seed: 31,
                noise,
                ..SimConfig::default()
            },
        )?;
        let crisp_stats = sim.run(horizon);

        let fuzzy = FuzzyQDpmAgent::new(&power, FuzzyConfig::standard(8)?)?;
        let mut sim = Simulator::new(
            power.clone(),
            service,
            spec.build(),
            Box::new(fuzzy),
            SimConfig {
                seed: 31,
                noise,
                ..SimConfig::default()
            },
        )?;
        let fuzzy_stats = sim.run(horizon);

        println!(
            "{:>22.1} {:>12.4} {:>12.4} {:>12}",
            noise_p,
            crisp_stats.avg_cost(),
            fuzzy_stats.avg_cost(),
            if fuzzy_stats.avg_cost() < crisp_stats.avg_cost() {
                "yes"
            } else {
                "no"
            }
        );
    }
    let _ = p_on;
    println!("\ncost = energy + weighted latency per slice; the fuzzy agent's");
    println!("membership smoothing keeps it ahead across noise levels");
    println!("(see fig4_fuzzy for the recorded sweep).");
    Ok(())
}
