//! Biosensor node scenario — the paper's motivating deployment.
//!
//! "DPM is demanded by deeply embedded and pervasively employed smart nodes
//! around us, e.g., biosensor node. They have only low end processor and
//! tight budget memory."
//!
//! A StrongARM SA-1100-class node samples a biosignal: mostly periodic
//! telemetry with rare bursty episodes (events). We verify that the Q-DPM
//! table fits a few-kilobyte budget and that the agent exploits sleep
//! between telemetry bursts.
//!
//! Run with: `cargo run --release --example sensor_node`

use qdpm::core::{QDpmAgent, QDpmConfig};
use qdpm::device::presets;
use qdpm::sim::{policies, SimConfig, Simulator};
use qdpm::workload::{PiecewiseStationary, Segment, WorkloadSpec};

fn workload() -> Result<PiecewiseStationary, Box<dyn std::error::Error>> {
    // Quiet monitoring, an event storm, then quiet again.
    Ok(PiecewiseStationary::new(vec![
        Segment::new(120_000, WorkloadSpec::bernoulli(0.004)?),
        Segment::new(
            30_000,
            WorkloadSpec::OnOff {
                p_on_to_off: 0.02,
                p_off_to_on: 0.05,
                p_arrival_on: 0.5,
            },
        ),
        Segment::new(120_000, WorkloadSpec::bernoulli(0.004)?),
    ])?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let power = presets::sa1100();
    let service = presets::default_service();
    let p_on = power.state(power.highest_power_state()).power;
    let horizon = 270_000;

    let agent = QDpmAgent::new(
        &power,
        QDpmConfig {
            queue_cap: 8,
            ..QDpmConfig::default()
        },
    )?;
    println!(
        "Q-table footprint: {} bytes (tight-budget memory per the paper)",
        agent.table_bytes()
    );
    assert!(agent.table_bytes() < 16 * 1024, "must fit a biosensor node");

    let mut sim = Simulator::new(
        power.clone(),
        service,
        Box::new(workload()?),
        Box::new(agent),
        SimConfig {
            seed: 2024,
            ..SimConfig::default()
        },
    )?;
    let q = sim.run(horizon);

    let mut sim_on = Simulator::new(
        power.clone(),
        service,
        Box::new(workload()?),
        Box::new(policies::AlwaysOn::new(&power)),
        SimConfig {
            seed: 2024,
            ..SimConfig::default()
        },
    )?;
    let on = sim_on.run(horizon);

    let mut sim_to = Simulator::new(
        power.clone(),
        service,
        Box::new(workload()?),
        Box::new(policies::FixedTimeout::break_even(&power)),
        SimConfig {
            seed: 2024,
            ..SimConfig::default()
        },
    )?;
    let to = sim_to.run(horizon);

    println!(
        "\n{:<16} {:>14} {:>12} {:>10}",
        "policy", "energy (J)", "reduction", "mean wait"
    );
    for (name, s) in [("always-on", &on), ("break-even TO", &to), ("q-dpm", &q)] {
        println!(
            "{:<16} {:>14.4} {:>11.1}% {:>10.2}",
            name,
            s.total_energy,
            100.0 * s.energy_reduction_vs(p_on),
            s.mean_wait()
        );
    }
    println!("\nThe node sleeps through telemetry gaps and rides out the event");
    println!("storm without re-running any offline policy optimizer.");
    Ok(())
}
