//! Batched structure-of-arrays cohort engine vs the dynamic per-device
//! path on a 100 000-device homogeneous fleet.
//!
//! Run with: `cargo run --release --example batched_fleet`
//! (optionally: `... --example batched_fleet -- <devices> <horizon> <policy>`
//! where policy is one of `q_dpm`, `always_on`, `greedy_off`,
//! `break_even`)
//!
//! One hundred thousand identical devices under training Q-DPM share a
//! single aggregate request stream. Built with cohort batching on (the
//! default), `FleetSim` recognizes the fleet as one homogeneous cohort
//! and steps it over flat structure-of-arrays state with a striped
//! Q-table — no per-device boxed policies, virtual calls, or deque
//! queues. Built with `batch_cohorts: false`, the same fleet runs the
//! classic one-simulator-per-device path. The program times both, prints
//! the device-slices/s ratio, and asserts the two reports are *equal to
//! the f64 bit* — the batched engine is a pure execution-strategy change,
//! not an approximation.

use std::time::Instant;

use qdpm::core::QDpmConfig;
use qdpm::device::presets;
use qdpm::sim::fleet::{FleetConfig, FleetMember, FleetPolicy, FleetReport, FleetSim};
use qdpm::sim::ScenarioWorkload;
use qdpm::workload::{DispatchPolicy, WorkloadSpec};

fn build_and_run(
    members: &[FleetMember],
    workload: &ScenarioWorkload,
    horizon: u64,
    batched: bool,
) -> Result<(FleetReport, f64, usize), Box<dyn std::error::Error>> {
    let fleet = FleetSim::new(
        members,
        workload,
        &FleetConfig {
            seed: 42,
            dispatch: DispatchPolicy::RoundRobin,
            horizon,
            batch_cohorts: batched,
            ..FleetConfig::default()
        },
    )?;
    let cohorts = fleet.batched_cohorts();
    let start = Instant::now();
    let report = fleet.run(1);
    Ok((report, start.elapsed().as_secs_f64(), cohorts))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let devices: usize = args.next().map_or(Ok(100_000), |a| a.parse())?;
    let horizon: u64 = args.next().map_or(Ok(500), |a| a.parse())?;
    let policy_name = args.next().unwrap_or_else(|| "q_dpm".to_string());
    let policy = match policy_name.as_str() {
        "q_dpm" => FleetPolicy::QDpm(QDpmConfig::default()),
        "always_on" => FleetPolicy::AlwaysOn,
        "greedy_off" => FleetPolicy::GreedyOff,
        "break_even" => FleetPolicy::BreakEvenTimeout,
        other => return Err(format!("unknown policy {other}").into()),
    };

    let members: Vec<FleetMember> = (0..devices)
        .map(|i| FleetMember {
            label: format!("node-{i}"),
            power: presets::three_state_generic(),
            service: presets::default_service(),
            policy: policy.clone(),
        })
        .collect();
    // A heavily loaded aggregate: two requests per slice on average,
    // spread across the whole fleet by round-robin.
    let workload = ScenarioWorkload::Stationary(WorkloadSpec::two_mode_mmpp(0.5, 0.9, 0.002)?);

    println!("fleet: {devices} x three-state-generic under {policy_name}, horizon {horizon}");

    let (batched_report, batched_secs, cohorts) =
        build_and_run(&members, &workload, horizon, true)?;
    assert_eq!(cohorts, 1, "a homogeneous fleet must form one cohort");
    let slices = (devices as u64 * horizon) as f64;
    println!(
        "batched (1 cohort):  {:>12.0} device-slices/s  ({batched_secs:.2}s)",
        slices / batched_secs
    );

    let (dynamic_report, dynamic_secs, dyn_cohorts) =
        build_and_run(&members, &workload, horizon, false)?;
    assert_eq!(dyn_cohorts, 0, "batching off must run the dynamic path");
    println!(
        "dynamic (per-device):{:>12.0} device-slices/s  ({dynamic_secs:.2}s)",
        slices / dynamic_secs
    );
    println!("speedup: {:.2}x", dynamic_secs / batched_secs);

    // The tentpole claim, checked in-program: bit-exact equality of the
    // full reports — per-device stats, final modes, fleet aggregate.
    assert_eq!(
        batched_report, dynamic_report,
        "batched and dynamic fleet reports must be identical"
    );
    println!(
        "reports identical: total energy {:.1}, completed {}, dropped {}",
        batched_report.stats.total.total_energy,
        batched_report.stats.total.completed,
        batched_report.stats.total.dropped
    );
    Ok(())
}
