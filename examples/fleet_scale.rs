//! Fleet-scale simulation: 500 heterogeneous devices behind one
//! aggregate request stream.
//!
//! Run with: `cargo run --release --example fleet_scale`
//!
//! Demonstrates the `qdpm_sim::fleet` layer: a mixed fleet (hard disks,
//! WLAN cards and processor cores under different policies, including a
//! group pooling experience in one shared Q-table) serving a single
//! bursty MMPP stream split across devices by the least-loaded
//! dispatcher, simulated under the event-skipping engine.

use qdpm::core::QDpmConfig;
use qdpm::device::presets;
use qdpm::sim::fleet::{FleetConfig, FleetMember, FleetPolicy, FleetSim};
use qdpm::sim::{EngineMode, ScenarioWorkload};
use qdpm::workload::{DispatchPolicy, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let devices = 500usize;
    let horizon = 50_000u64;

    // A heterogeneous fleet: a third disks under break-even timeouts, a
    // third WLAN cards under adaptive timeouts, a third generic nodes
    // learning jointly into one shared Q-table.
    let members: Vec<FleetMember> = (0..devices)
        .map(|i| match i % 3 {
            0 => FleetMember {
                label: format!("hdd-{i}"),
                power: presets::ibm_hdd(),
                service: presets::default_service(),
                policy: FleetPolicy::BreakEvenTimeout,
            },
            1 => FleetMember {
                label: format!("wlan-{i}"),
                power: presets::wlan_card(),
                service: presets::default_service(),
                policy: FleetPolicy::AdaptiveTimeout,
            },
            // The learning group keeps its default exploration: a shared
            // table pools what any node explores, and every node after
            // the first starts from its predecessors' experience.
            _ => FleetMember {
                label: format!("node-{i}"),
                power: presets::three_state_generic(),
                service: presets::default_service(),
                policy: FleetPolicy::SharedQDpm(QDpmConfig::default()),
            },
        })
        .collect();

    // One aggregate stream for the whole fleet: bursty MMPP averaging
    // ~0.3 arrivals/slice fleet-wide — per-device traffic is sparse, the
    // regime where event skipping shines.
    let aggregate = ScenarioWorkload::Stationary(WorkloadSpec::two_mode_mmpp(0.05, 0.8, 0.002)?);

    let fleet = FleetSim::new(
        &members,
        &aggregate,
        &FleetConfig {
            dispatch: DispatchPolicy::LeastLoaded,
            engine_mode: EngineMode::EventSkip,
            horizon,
            ..FleetConfig::default()
        },
    )?;
    println!(
        "fleet: {} devices, {} aggregate arrivals dispatched over {} slices \
         (shared table: {})",
        fleet.len(),
        fleet.dispatched_arrivals(),
        horizon,
        fleet.has_shared_table(),
    );

    let report = fleet.run(qdpm::sim::parallel::available_threads());
    let s = &report.stats;
    println!(
        "totals: energy {:.1}, completed {}/{} arrivals, dropped {}",
        s.total.total_energy, s.total.completed, s.total.arrivals, s.total.dropped
    );
    println!(
        "per-device energy: mean {:.3}, p50 {:.3}, p90 {:.3}, p99 {:.3}",
        s.mean_energy, s.energy_p50, s.energy_p90, s.energy_p99
    );
    println!(
        "delay: fleet mean wait {:.2} slices (per-device p50 {:.2}, p99 {:.2})",
        s.mean_wait, s.wait_p50, s.wait_p99
    );
    let occupied: Vec<String> = s
        .mode_occupancy
        .iter()
        .enumerate()
        .map(|(i, f)| format!("state{i} {:.0}%", 100.0 * f))
        .collect();
    println!(
        "end-of-run occupancy: {} (transitioning {:.0}%)",
        occupied.join(", "),
        100.0 * s.transitioning
    );

    // Sanity: the dispatch partitioned the stream (no loss/duplication).
    assert_eq!(s.total.steps, devices as u64 * horizon);
    Ok(())
}
