//! QoS-guaranteed Q-DPM (the paper's future-work item, implemented).
//!
//! The constrained problem: minimize energy subject to a bound on average
//! queueing delay. We compare plain Q-DPM (fixed reward trade-off), the
//! QoS agent (adaptive Lagrange multiplier), and the constrained-LP
//! randomized optimum.
//!
//! Run with: `cargo run --release --example qos_guaranteed`

use qdpm::core::{QDpmAgent, QDpmConfig, QosConfig, QosQDpmAgent};
use qdpm::device::presets;
use qdpm::mdp::{build_dpm_mdp, lp};
use qdpm::sim::{policies, SimConfig, Simulator};
use qdpm::workload::{MarkovArrivalModel, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let power = presets::three_state_generic();
    let service = presets::default_service();
    let arrival_p = 0.15;
    let target_queue = 0.6; // average queue-length bound (Little's law proxy)
    let horizon = 300_000;
    let p_on = power.state(power.highest_power_state()).power;
    let spec = WorkloadSpec::bernoulli(arrival_p)?;

    println!("constraint: average queue length <= {target_queue}\n");
    println!(
        "{:<18} {:>10} {:>12} {:>11} {:>9}",
        "policy", "avg power", "reduction", "avg queue", "ok?"
    );

    // Plain Q-DPM (no constraint awareness).
    let agent = QDpmAgent::new(&power, QDpmConfig::default())?;
    let mut sim = Simulator::new(
        power.clone(),
        service,
        spec.build(),
        Box::new(agent),
        SimConfig {
            seed: 5,
            ..SimConfig::default()
        },
    )?;
    let s = sim.run(horizon);
    print_row("q-dpm (plain)", &s, p_on, target_queue);

    // QoS-guaranteed Q-DPM.
    let qos = QosQDpmAgent::new(
        &power,
        QosConfig {
            perf_target: target_queue,
            ..QosConfig::default()
        },
    )?;
    let mut sim = Simulator::new(
        power.clone(),
        service,
        spec.build(),
        Box::new(qos),
        SimConfig {
            seed: 5,
            ..SimConfig::default()
        },
    )?;
    let s = sim.run(horizon);
    print_row("qos-q-dpm", &s, p_on, target_queue);

    // Constrained-LP randomized optimum (model known). The long discount
    // (0.99) matches the agents; shorter horizons make tight bounds
    // infeasible because the uniform initial distribution includes
    // full-queue states whose drain dominates the discounted average.
    let arrivals = MarkovArrivalModel::bernoulli(arrival_p)?;
    let model = build_dpm_mdp(&power, &service, &arrivals, 8, 20.0)?;
    match lp::lp_solve_constrained(&model.mdp, 0.99, target_queue) {
        Ok(sol) => {
            println!(
                "  (constrained LP predicts {:.4} energy/slice at queue {:.3}, {} pivots)",
                sol.energy_per_slice, sol.perf_per_slice, sol.pivots
            );
            let controller =
                policies::MdpPolicyController::stochastic(model.space.clone(), sol.policy);
            let mut sim = Simulator::new(
                power.clone(),
                service,
                spec.build(),
                Box::new(controller),
                SimConfig {
                    seed: 5,
                    ..SimConfig::default()
                },
            )?;
            let s = sim.run(horizon);
            print_row("constrained-lp", &s, p_on, target_queue);
        }
        Err(qdpm::mdp::MdpError::LpInfeasible) => {
            println!("  (constrained LP: bound {target_queue} infeasible at this discount)");
        }
        Err(e) => return Err(e.into()),
    }

    println!("\nThe QoS agent trades away some energy saving to respect the");
    println!("bound, tracking the randomized LP optimum without a model.");
    Ok(())
}

fn print_row(name: &str, s: &qdpm::sim::RunStats, p_on: f64, target: f64) {
    println!(
        "{:<18} {:>10.4} {:>11.1}% {:>11.3} {:>9}",
        name,
        s.avg_power(),
        100.0 * s.energy_reduction_vs(p_on),
        s.avg_queue_len(),
        if s.avg_queue_len() <= target * 1.15 {
            "yes"
        } else {
            "NO"
        }
    );
}
