//! Online dispatch and hierarchical power capping: the same fleet under
//! three routing regimes.
//!
//! Run with: `cargo run --release --example online_dispatch`
//!
//! One aggregate Bernoulli stream feeds twelve identical timeout-managed
//! devices three ways:
//!
//! 1. **Round-robin** — state-blind spreading (the ahead-of-time split);
//! 2. **Sleep-aware** — online routing that prefers awake devices, so
//!    sleepers stay asleep and load consolidates onto a hot subset;
//! 3. **Sleep-aware + rack power cap** — the same online routing inside a
//!    [`RackCoordinator`] whose budget vetoes wakeups (and sheds their
//!    arrivals to awake devices) whenever waking would push the rack's
//!    per-slice draw over the cap.
//!
//! The printed comparison shows the energy / latency / drop trade the
//! three regimes make, and the capped run proves its invariant: no slice
//! ever draws more than the cap.

use qdpm::device::presets;
use qdpm::sim::fleet::{FleetConfig, FleetMember, FleetPolicy, FleetSim, FleetStats};
use qdpm::sim::hierarchy::{RackCoordinator, RackSpec, CAP_EPS};
use qdpm::sim::ScenarioWorkload;
use qdpm::workload::{DispatchPolicy, WorkloadSpec};

fn members(n: usize) -> Vec<FleetMember> {
    (0..n)
        .map(|i| FleetMember {
            label: format!("node-{i}"),
            power: presets::three_state_generic(),
            service: presets::default_service(),
            policy: FleetPolicy::FixedTimeout(20),
        })
        .collect()
}

fn row(name: &str, s: &FleetStats) {
    println!(
        "{name:<24} {:>10.1} {:>10.2} {:>9} {:>9}",
        s.total.total_energy, s.mean_wait, s.total.completed, s.total.dropped
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let devices = 12usize;
    let horizon = 20_000u64;
    let cap = 2.5; // rack budget, in per-slice energy units (peak draw is 12.0)

    // One fleet-wide stream: ~0.35 arrivals/slice — light enough that most
    // devices could sleep if routing let them.
    let aggregate = ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(0.35)?);
    let config = |dispatch| FleetConfig {
        dispatch,
        horizon,
        ..FleetConfig::default()
    };

    // 1. State-blind round-robin: every device gets a 1/12 share of the
    //    stream, so every device sees just enough traffic to stay awake.
    let rr = FleetSim::new(
        &members(devices),
        &aggregate,
        &config(DispatchPolicy::RoundRobin),
    )?
    .run(1);

    // 2. Sleep-aware online routing: arrivals go to awake devices while
    //    any have queue room (spill 4), so the idle tail actually sleeps.
    let sa = FleetSim::new(
        &members(devices),
        &aggregate,
        &config(DispatchPolicy::SleepAware { spill: 4 }),
    )?
    .run(1);

    // 3. The same routing under a rack cap: the coordinator cold-boots the
    //    rack asleep and only grants wakeups the budget can afford.
    let spec = RackSpec {
        label: "rack-0".to_string(),
        members: members(devices),
        power_cap: Some(cap),
    };
    let rack = RackCoordinator::new(&spec, &config(DispatchPolicy::SleepAware { spill: 4 }))?;
    let (capped, per_slice) = rack.run_probed(&aggregate)?;

    let hottest = per_slice.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        hottest <= cap + CAP_EPS,
        "cap invariant violated: {hottest} > {cap}"
    );

    println!("{devices} devices, {horizon} slices, aggregate Bernoulli(0.35)");
    println!(
        "{:<24} {:>10} {:>10} {:>9} {:>9}",
        "dispatch", "energy", "mean wait", "completed", "dropped"
    );
    row("round-robin", &rr.stats);
    row("sleep-aware", &sa.stats);
    row(&format!("sleep-aware, cap {cap}"), &capped.fleet.stats);
    println!(
        "capped rack: hottest slice drew {hottest:.2} (cap {cap}), \
         {} wakeups vetoed, {} arrivals shed",
        capped.vetoed_wakeups, capped.shed_arrivals
    );

    // Consolidation saves energy; the cap trades a little latency for a
    // hard power guarantee.
    assert!(sa.stats.total.total_energy < rr.stats.total.total_energy);
    Ok(())
}
