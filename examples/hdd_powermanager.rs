//! Mobile hard-disk power management — the canonical DPM case study.
//!
//! The IBM-mobile-HDD preset has expensive spin-up (seconds, joules), which
//! is what makes naive greedy spin-down lose and policy quality matter.
//! We compare Q-DPM against the heuristics, the clairvoyant oracle, and the
//! model-known optimum on a bursty (on/off) access pattern.
//!
//! Run with: `cargo run --release --example hdd_powermanager`

use qdpm::core::{PowerManager, QDpmAgent, QDpmConfig};
use qdpm::device::presets;
use qdpm::mdp::{build_dpm_mdp, solvers, CostWeights};
use qdpm::sim::{policies, SimConfig, Simulator};
use qdpm::workload::{RequestGenerator, TraceRecorder, WorkloadSpec};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let power = presets::ibm_hdd();
    let service = presets::default_service();
    let p_on = power.state(power.highest_power_state()).power;
    let horizon: u64 = 300_000;

    // Bursty access: think "file copy, then idle browsing".
    let spec = WorkloadSpec::OnOff {
        p_on_to_off: 0.01,
        p_off_to_on: 0.002,
        p_arrival_on: 0.5,
    };

    // Record one arrival trace so the oracle (and every policy) sees the
    // exact same future.
    let mut gen = spec.build();
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let trace_rec = TraceRecorder::capture(gen.as_mut(), &mut rng, horizon);
    let trace: Vec<u32> = {
        let mut replay = trace_rec.into_replay()?;
        let mut dummy = rand::rngs::StdRng::seed_from_u64(0);
        (0..horizon)
            .map(|_| replay.next_arrivals(&mut dummy))
            .collect()
    };
    let trace_spec = WorkloadSpec::Trace {
        arrivals: trace.clone(),
    };

    println!(
        "device: {} | workload: bursty on/off | horizon {horizon}\n",
        power.name()
    );
    println!(
        "{:<20} {:>10} {:>12} {:>10} {:>8}",
        "policy", "avg power", "reduction", "mean wait", "drops"
    );

    let run = |pm: Box<dyn PowerManager>| -> Result<(), Box<dyn std::error::Error>> {
        let name = pm.name().to_string();
        let mut sim = Simulator::new(
            power.clone(),
            service,
            trace_spec.build(),
            pm,
            SimConfig {
                seed: 7,
                queue_cap: 8,
                ..SimConfig::default()
            },
        )?;
        let stats = sim.run(horizon);
        println!(
            "{:<20} {:>10.4} {:>11.1}% {:>10.2} {:>8}",
            name,
            stats.avg_power(),
            100.0 * stats.energy_reduction_vs(p_on),
            stats.mean_wait(),
            stats.dropped
        );
        Ok(())
    };

    run(Box::new(policies::AlwaysOn::new(&power)))?;
    run(Box::new(policies::GreedyOff::new(&power)))?;
    run(Box::new(policies::FixedTimeout::break_even(&power)))?;
    run(Box::new(policies::AdaptiveTimeout::new(&power)))?;
    run(Box::new(policies::Oracle::from_trace(&power, &trace)))?;
    run(Box::new(QDpmAgent::new(&power, QDpmConfig::default())?))?;

    // Model-known optimal policy for the *average* on/off parameters: the
    // white-box reference (it additionally observes the requester mode).
    let arrivals = spec.markov_model().expect("on/off is markovian");
    let model = build_dpm_mdp(&power, &service, &arrivals, 8, 20.0)?;
    let cost = model.mdp.combined_cost(CostWeights::default());
    let sol = solvers::relative_value_iteration(&model.mdp, &cost, 1e-9, 500_000)?;
    let controller =
        policies::MdpPolicyController::deterministic(model.space.clone(), sol.policy.clone());
    let mut sim = Simulator::new(
        power.clone(),
        service,
        spec.build(),
        Box::new(controller),
        SimConfig {
            seed: 7,
            queue_cap: 8,
            expose_sr_mode: true,
            ..SimConfig::default()
        },
    )?;
    let stats = sim.run(horizon);
    println!(
        "{:<20} {:>10.4} {:>11.1}% {:>10.2} {:>8}",
        "mdp-optimal*",
        stats.avg_power(),
        100.0 * stats.energy_reduction_vs(p_on),
        stats.mean_wait(),
        stats.dropped
    );
    println!("\n* white-box: observes the hidden on/off mode; run on its own");
    println!("  stochastic realization of the same on/off parameters.");
    Ok(())
}
