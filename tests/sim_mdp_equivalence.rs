//! The load-bearing contract test: the simulator and the exact DTMDP
//! builder implement *identical* step semantics.
//!
//! For a fixed policy, the long-run average cost measured by simulation
//! must match the policy's analytic average cost computed on the compiled
//! MDP (gain from the bias/gain linear system). If these diverge, the
//! "optimal" baseline of Fig. 1 would be meaningless.

use qdpm::device::{presets, PowerModel, ServiceModel};
use qdpm::mdp::{build_dpm_mdp, solvers, CostWeights, DeterministicPolicy};
use qdpm::sim::{policies::MdpPolicyController, SimConfig, Simulator};
use qdpm::workload::{MarkovArrivalModel, WorkloadSpec};
use qdpm_core::RewardWeights;

const HORIZON: u64 = 400_000;
/// Statistical tolerance: long-run averages over 400k slices.
const REL_TOL: f64 = 0.05;

fn measured_vs_analytic(
    power: &PowerModel,
    service: &ServiceModel,
    arrival_p: f64,
    policy_kind: &str,
) -> (f64, f64) {
    let weights = RewardWeights::default();
    let arrivals = MarkovArrivalModel::bernoulli(arrival_p).unwrap();
    let model = build_dpm_mdp(power, service, &arrivals, 8, weights.drop_penalty).unwrap();
    let cost = model
        .mdp
        .combined_cost(CostWeights::new(weights.energy, weights.perf).unwrap());

    // Pick a policy to compare under.
    let policy: DeterministicPolicy = match policy_kind {
        "optimal" => {
            solvers::relative_value_iteration(&model.mdp, &cost, 1e-10, 500_000)
                .unwrap()
                .policy
        }
        "always-serve" => {
            let serve = power.serving_state().index();
            DeterministicPolicy::new(
                (0..model.mdp.n_states())
                    .map(|s| {
                        let (_, dev, _) = model.space.decompose(s);
                        let legal = model.space.legal_actions(power, dev);
                        legal
                            .iter()
                            .copied()
                            .find(|&a| a == serve)
                            .unwrap_or(legal[0])
                    })
                    .collect(),
            )
        }
        other => panic!("unknown policy kind {other}"),
    };

    let (analytic_gain, _) = solvers::evaluate_policy_average(&model.mdp, &cost, &policy).unwrap();

    let controller = MdpPolicyController::deterministic(model.space.clone(), policy);
    let mut sim = Simulator::new(
        power.clone(),
        *service,
        WorkloadSpec::bernoulli(arrival_p).unwrap().build(),
        Box::new(controller),
        SimConfig {
            queue_cap: 8,
            weights,
            seed: 1234,
            expose_sr_mode: false,
            ..SimConfig::default()
        },
    )
    .unwrap();
    let stats = sim.run(HORIZON);
    (stats.avg_cost(), analytic_gain)
}

#[test]
fn optimal_policy_measured_cost_matches_gain_light_load() {
    let power = presets::three_state_generic();
    let service = presets::default_service();
    let (measured, analytic) = measured_vs_analytic(&power, &service, 0.05, "optimal");
    assert!(
        (measured - analytic).abs() / analytic < REL_TOL,
        "measured {measured} vs analytic {analytic}"
    );
}

#[test]
fn optimal_policy_measured_cost_matches_gain_heavy_load() {
    let power = presets::three_state_generic();
    let service = presets::default_service();
    let (measured, analytic) = measured_vs_analytic(&power, &service, 0.4, "optimal");
    assert!(
        (measured - analytic).abs() / analytic < REL_TOL,
        "measured {measured} vs analytic {analytic}"
    );
}

#[test]
fn always_serve_policy_matches_gain() {
    let power = presets::three_state_generic();
    let service = presets::default_service();
    let (measured, analytic) = measured_vs_analytic(&power, &service, 0.2, "always-serve");
    assert!(
        (measured - analytic).abs() / analytic < REL_TOL,
        "measured {measured} vs analytic {analytic}"
    );
}

#[test]
fn equivalence_holds_on_two_state_device() {
    let power = presets::two_state(1.0, 0.05, 2, 0.8);
    let service = presets::default_service();
    let (measured, analytic) = measured_vs_analytic(&power, &service, 0.1, "optimal");
    assert!(
        (measured - analytic).abs() / analytic.max(1e-9) < REL_TOL,
        "measured {measured} vs analytic {analytic}"
    );
}

#[test]
fn equivalence_holds_on_hdd_preset() {
    let power = presets::ibm_hdd();
    let service = presets::default_service();
    let (measured, analytic) = measured_vs_analytic(&power, &service, 0.05, "optimal");
    assert!(
        (measured - analytic).abs() / analytic.max(1e-9) < REL_TOL,
        "measured {measured} vs analytic {analytic}"
    );
}
