//! Q-table persistence: an embedded node checkpoints its learned table and
//! warm-starts after a reboot instead of re-exploring from scratch.

use qdpm::core::{CoreError, QDpmAgent, QDpmConfig};
use qdpm::device::presets;
use qdpm::sim::{SimConfig, Simulator};
use qdpm::workload::WorkloadSpec;

fn sim_with(agent: QDpmAgent, seed: u64) -> Simulator {
    let power = presets::three_state_generic();
    Simulator::new(
        power,
        presets::default_service(),
        WorkloadSpec::bernoulli(0.05).unwrap().build(),
        Box::new(agent),
        SimConfig {
            seed,
            ..SimConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn warm_start_skips_the_learning_transient() {
    let power = presets::three_state_generic();

    // Train a first "boot" of the node with a hand-rolled environment loop
    // (the agent stays typed, so we can checkpoint it afterwards). The loop
    // follows the engine's step contract: decide, command, arrivals,
    // service, feedback.
    let trained = {
        use qdpm::core::{Observation, PowerManager, StepOutcome};
        use qdpm::device::{Device, Queue, Server};
        use rand::{RngCore as _, SeedableRng};

        let mut agent = QDpmAgent::new(&power, QDpmConfig::default()).unwrap();
        let mut device = Device::new(power.clone());
        let mut queue = Queue::new(8).unwrap();
        let mut server = Server::new(presets::default_service());
        let mut gen = WorkloadSpec::bernoulli(0.05).unwrap().build();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut idle: u64 = 0;
        let observe = |device: &Device, queue: &Queue, idle: u64| Observation {
            device_mode: device.mode(),
            queue_len: queue.len(),
            idle_slices: idle,
            sr_mode_hint: None,
        };
        for now in 0..150_000u64 {
            let obs = observe(&device, &queue, idle);
            let cmd = agent.decide(&obs, &mut rng);
            let cmd_energy = device.command(cmd).immediate_energy();
            let arrivals = gen.next_arrivals(&mut rng);
            let mut dropped = 0;
            for _ in 0..arrivals {
                if !queue.push(now) {
                    dropped += 1;
                }
            }
            idle = if arrivals > 0 { 0 } else { idle + 1 };
            let tick = device.tick();
            let mut completed = 0;
            if tick.can_serve && !queue.is_empty() {
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                if server.advance(u) {
                    queue.pop(now);
                    completed = 1;
                }
            }
            let outcome = StepOutcome {
                energy: cmd_energy + tick.energy,
                queue_len: queue.len(),
                dropped,
                completed,
                arrivals,
                deadline_misses: 0,
            };
            agent.observe(&outcome, &observe(&device, &queue, idle));
        }
        agent.export_table()
    };

    // "Reboot": a fresh agent importing the checkpoint...
    let mut warm = QDpmAgent::new(&power, QDpmConfig::default()).unwrap();
    warm.import_table(&trained).unwrap();
    let mut warm_sim = sim_with(warm, 3);
    let warm_cost = warm_sim.run(20_000).avg_cost();

    // ...versus a cold agent on the identical workload.
    let cold = QDpmAgent::new(&power, QDpmConfig::default()).unwrap();
    let mut cold_sim = sim_with(cold, 3);
    let cold_cost = cold_sim.run(20_000).avg_cost();

    assert!(
        warm_cost < cold_cost * 0.8,
        "warm start {warm_cost} should clearly beat cold start {cold_cost}"
    );
}

#[test]
fn import_validates_dimensions() {
    let power = presets::three_state_generic();
    let small = QDpmAgent::new(
        &power,
        QDpmConfig {
            queue_cap: 4,
            ..QDpmConfig::default()
        },
    )
    .unwrap();
    let blob = small.export_table();
    let mut big = QDpmAgent::new(
        &power,
        QDpmConfig {
            queue_cap: 16,
            ..QDpmConfig::default()
        },
    )
    .unwrap();
    assert!(matches!(
        big.import_table(&blob),
        Err(CoreError::CorruptTable(_))
    ));
}

#[test]
fn export_import_is_lossless() {
    let power = presets::three_state_generic();
    let agent = QDpmAgent::new(&power, QDpmConfig::default()).unwrap();
    let blob = agent.export_table();
    let mut clone = QDpmAgent::new(&power, QDpmConfig::default()).unwrap();
    clone.import_table(&blob).unwrap();
    assert_eq!(clone.export_table(), blob);
}
