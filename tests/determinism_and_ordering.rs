//! Reproducibility and sanity-ordering properties of the whole stack.

use qdpm::core::{PowerManager, QDpmAgent, QDpmConfig};
use qdpm::device::presets;
use qdpm::sim::{policies, RunStats, SimConfig, Simulator};
use qdpm::workload::{RequestGenerator, TraceRecorder, WorkloadSpec};
use rand::SeedableRng;

fn run_policy(pm: Box<dyn PowerManager>, seed: u64, spec: &WorkloadSpec, steps: u64) -> RunStats {
    let power = presets::three_state_generic();
    let mut sim = Simulator::new(
        power,
        presets::default_service(),
        spec.build(),
        pm,
        SimConfig {
            seed,
            ..SimConfig::default()
        },
    )
    .unwrap();
    sim.run(steps)
}

#[test]
fn identical_seeds_are_bit_identical() {
    let power = presets::three_state_generic();
    let spec = WorkloadSpec::bernoulli(0.1).unwrap();
    let a = run_policy(
        Box::new(QDpmAgent::new(&power, QDpmConfig::default()).unwrap()),
        99,
        &spec,
        50_000,
    );
    let b = run_policy(
        Box::new(QDpmAgent::new(&power, QDpmConfig::default()).unwrap()),
        99,
        &spec,
        50_000,
    );
    assert_eq!(a, b, "same seed must reproduce exactly");
}

#[test]
fn different_seeds_differ() {
    let power = presets::three_state_generic();
    let spec = WorkloadSpec::bernoulli(0.1).unwrap();
    let a = run_policy(
        Box::new(QDpmAgent::new(&power, QDpmConfig::default()).unwrap()),
        1,
        &spec,
        50_000,
    );
    let b = run_policy(
        Box::new(QDpmAgent::new(&power, QDpmConfig::default()).unwrap()),
        2,
        &spec,
        50_000,
    );
    assert_ne!(a.total_energy, b.total_energy);
}

#[test]
fn workload_stream_isolated_from_policy_randomness() {
    // Policies consuming different amounts of policy-RNG must still see
    // the identical arrival sequence under one seed.
    let power = presets::three_state_generic();
    let spec = WorkloadSpec::bernoulli(0.2).unwrap();
    let on = run_policy(Box::new(policies::AlwaysOn::new(&power)), 7, &spec, 30_000);
    let q = run_policy(
        Box::new(QDpmAgent::new(&power, QDpmConfig::default()).unwrap()),
        7,
        &spec,
        30_000,
    );
    assert_eq!(on.arrivals, q.arrivals, "arrival streams must match");
}

#[test]
fn oracle_dominates_online_heuristics_on_bursty_trace() {
    let power = presets::three_state_generic();
    let steps: u64 = 120_000;
    // Record a bursty trace so the oracle sees the exact future.
    let mut gen = WorkloadSpec::OnOff {
        p_on_to_off: 0.02,
        p_off_to_on: 0.004,
        p_arrival_on: 0.6,
    }
    .build();
    let mut rng = rand::rngs::StdRng::seed_from_u64(55);
    let rec = TraceRecorder::capture(gen.as_mut(), &mut rng, steps);
    let trace: Vec<u32> = {
        let mut replay = rec.into_replay().unwrap();
        let mut dummy = rand::rngs::StdRng::seed_from_u64(0);
        (0..steps)
            .map(|_| replay.next_arrivals(&mut dummy))
            .collect()
    };
    let spec = WorkloadSpec::Trace {
        arrivals: trace.clone(),
    };

    let oracle = run_policy(
        Box::new(policies::Oracle::from_trace(&power, &trace)),
        3,
        &spec,
        steps,
    );
    let prewake = run_policy(
        Box::new(policies::Oracle::from_trace(&power, &trace).with_prewake()),
        3,
        &spec,
        steps,
    );
    let timeout = run_policy(
        Box::new(policies::FixedTimeout::break_even(&power)),
        3,
        &spec,
        steps,
    );
    let greedy = run_policy(Box::new(policies::GreedyOff::new(&power)), 3, &spec, steps);
    let on = run_policy(Box::new(policies::AlwaysOn::new(&power)), 3, &spec, steps);

    // The reactive oracle is the per-gap energy lower bound.
    assert!(
        oracle.total_energy <= timeout.total_energy * 1.01,
        "oracle {} vs timeout {}",
        oracle.total_energy,
        timeout.total_energy
    );
    assert!(
        oracle.total_energy <= greedy.total_energy * 1.01,
        "oracle {} vs greedy {}",
        oracle.total_energy,
        greedy.total_energy
    );
    assert!(
        oracle.total_energy < on.total_energy,
        "oracle must beat always-on"
    );
    // The pre-waking oracle trades energy for latency.
    assert!(
        prewake.mean_wait() < oracle.mean_wait(),
        "pre-wake wait {} vs reactive wait {}",
        prewake.mean_wait(),
        oracle.mean_wait()
    );
    assert!(
        prewake.total_energy >= oracle.total_energy,
        "pre-waking cannot save energy over reactive"
    );
}

#[test]
fn always_on_has_reference_latency() {
    let power = presets::three_state_generic();
    let spec = WorkloadSpec::bernoulli(0.1).unwrap();
    let on = run_policy(Box::new(policies::AlwaysOn::new(&power)), 4, &spec, 50_000);
    let greedy = run_policy(Box::new(policies::GreedyOff::new(&power)), 4, &spec, 50_000);
    assert!(on.mean_wait() < greedy.mean_wait());
    assert_eq!(on.dropped, 0, "always-on should keep up at this load");
}
