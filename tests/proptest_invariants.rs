//! Property-based invariants across the whole stack.

use proptest::prelude::*;
use qdpm::core::{PowerManager, QDpmAgent, QDpmConfig};
use qdpm::device::presets;
use qdpm::mdp::{build_dpm_mdp, lp, sample, solvers, CostWeights};
use qdpm::sim::{policies, SimConfig, Simulator};
use qdpm::workload::{MarkovArrivalModel, WorkloadSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Request conservation: arrivals = completed + dropped + still queued,
    /// for arbitrary seeds, rates and policies.
    #[test]
    fn conservation_holds(seed in 0u64..1000, p in 0.0f64..=1.0, policy_id in 0usize..3) {
        let power = presets::three_state_generic();
        let pm: Box<dyn PowerManager> = match policy_id {
            0 => Box::new(policies::AlwaysOn::new(&power)),
            1 => Box::new(policies::GreedyOff::new(&power)),
            _ => Box::new(QDpmAgent::new(&power, QDpmConfig::default()).unwrap()),
        };
        let mut sim = Simulator::new(
            power,
            presets::default_service(),
            WorkloadSpec::bernoulli(p).unwrap().build(),
            pm,
            SimConfig { seed, ..SimConfig::default() },
        ).unwrap();
        let stats = sim.run(3_000);
        let queued = sim.observation().queue_len as u64;
        prop_assert_eq!(stats.arrivals, stats.completed + stats.dropped + queued);
    }

    /// Energy is bounded per slice by the device's physics: at least the
    /// lowest state power, at most the highest power plus the worst
    /// per-slice transition energy.
    #[test]
    fn energy_within_physical_bounds(seed in 0u64..500, p in 0.0f64..=0.5) {
        let power = presets::three_state_generic();
        let lo = power.state(power.lowest_power_state()).power;
        // Upper bound: max state power + max per-step transition energy.
        let mut hi: f64 = power.state(power.highest_power_state()).power;
        let mut max_trans: f64 = 0.0;
        for (a, _) in power.states() {
            for b in power.commands_from(a) {
                let t = power.transition(a, b).unwrap();
                max_trans = max_trans.max(t.energy_per_step());
            }
        }
        hi += max_trans;

        let pm = QDpmAgent::new(&power, QDpmConfig::default()).unwrap();
        let mut sim = Simulator::new(
            power,
            presets::default_service(),
            WorkloadSpec::bernoulli(p).unwrap().build(),
            Box::new(pm),
            SimConfig { seed, ..SimConfig::default() },
        ).unwrap();
        let steps = 2_000u64;
        let stats = sim.run(steps);
        prop_assert!(stats.total_energy >= lo * steps as f64 - 1e-9);
        prop_assert!(stats.total_energy <= hi * steps as f64 + 1e-9);
    }

    /// VI, PI and LP agree on random MDPs (cross-solver consistency).
    #[test]
    fn solvers_agree_on_random_mdps(seed in 0u64..60) {
        let m = sample::random_mdp(10, 3, 3, seed).unwrap();
        let cost = m.combined_cost(CostWeights::new(1.0, 0.3).unwrap());
        let vi = solvers::value_iteration(
            &m, &cost, solvers::SolveOptions::with_discount(0.9).unwrap()).unwrap();
        let pi = solvers::policy_iteration(&m, &cost, 0.9).unwrap();
        let lp = lp::lp_solve_discounted(&m, &cost, 0.9).unwrap();
        for s in 0..m.n_states() {
            prop_assert!((vi.values[s] - pi.values[s]).abs() < 1e-6);
            prop_assert!((vi.values[s] - lp.values[s]).abs() < 1e-5);
        }
    }

    /// The optimal policy's gain is monotone in the arrival rate (more
    /// work can never make the optimum cheaper).
    #[test]
    fn optimal_gain_monotone_in_rate(p1 in 0.01f64..0.5, delta in 0.01f64..0.4) {
        let power = presets::three_state_generic();
        let service = presets::default_service();
        let p2 = (p1 + delta).min(0.95);
        let gain = |p: f64| {
            let arrivals = MarkovArrivalModel::bernoulli(p).unwrap();
            let model = build_dpm_mdp(&power, &service, &arrivals, 6, 20.0).unwrap();
            let cost = model.mdp.combined_cost(CostWeights::default());
            solvers::relative_value_iteration(&model.mdp, &cost, 1e-8, 300_000)
                .unwrap()
                .gain
        };
        prop_assert!(gain(p2) >= gain(p1) - 1e-6);
    }

    /// The constrained LP's performance never exceeds its bound, and its
    /// energy is monotone (tighter bound -> at least as much energy).
    #[test]
    fn constrained_lp_honors_bound(bound in 0.3f64..3.0) {
        let power = presets::three_state_generic();
        let service = presets::default_service();
        let arrivals = MarkovArrivalModel::bernoulli(0.15).unwrap();
        let model = build_dpm_mdp(&power, &service, &arrivals, 6, 20.0).unwrap();
        match lp::lp_solve_constrained(&model.mdp, 0.95, bound) {
            Ok(sol) => {
                prop_assert!(sol.perf_per_slice <= bound + 1e-6);
                let looser = lp::lp_solve_constrained(&model.mdp, 0.95, bound * 2.0).unwrap();
                prop_assert!(looser.energy_per_slice <= sol.energy_per_slice + 1e-6);
            }
            Err(qdpm::mdp::MdpError::LpInfeasible) => {
                // Very tight bounds may be infeasible; that is a valid
                // outcome, not a failure.
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
        }
    }

    /// Q-table values stay bounded by reward/(1-beta) under bounded
    /// rewards (no divergence).
    #[test]
    fn q_values_bounded(seed in 0u64..200) {
        let power = presets::three_state_generic();
        let agent = QDpmAgent::new(&power, QDpmConfig::default()).unwrap();
        let discount = 0.99; // QDpmConfig::default() discount
        // Max |reward| per slice: energy <= 1.6ish + 0.1*(8 + 20) = bounded.
        let mut sim = Simulator::new(
            power,
            presets::default_service(),
            WorkloadSpec::bernoulli(0.5).unwrap().build(),
            Box::new(agent),
            SimConfig { seed, ..SimConfig::default() },
        ).unwrap();
        sim.run(5_000);
        // Inspect the (type-erased) agent indirectly through its behavior:
        // run a fresh typed agent to check table bounds directly.
        let power = presets::three_state_generic();
        let mut agent = QDpmAgent::new(&power, QDpmConfig::default()).unwrap();
        let mut sim2 = Simulator::new(
            power,
            presets::default_service(),
            WorkloadSpec::bernoulli(0.5).unwrap().build(),
            Box::new(policies::AlwaysOn::new(&presets::three_state_generic())),
            SimConfig { seed, ..SimConfig::default() },
        ).unwrap();
        // Feed the agent synthetic transitions drawn from the sim's
        // observation stream.
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        for _ in 0..2_000 {
            let obs = sim2.observation();
            let _ = agent.decide(&obs, &mut rng);
            let outcome = sim2.step();
            agent.observe(&outcome, &sim2.observation());
        }
        let table = agent.learner().table();
        let r_max = 1.0 * 1.6 + 0.1 * (8.0 + 20.0);
        let bound = r_max / (1.0 - discount) + 1e-6;
        for s in 0..table.n_states() {
            for a in 0..table.n_actions() {
                prop_assert!(table.get(s, a).abs() <= bound,
                    "Q({s},{a}) = {} exceeds bound {bound}", table.get(s, a));
            }
        }
    }

    /// Q-table binary codec: lossless round trip for arbitrary shapes and
    /// values; any single-byte corruption is detected.
    #[test]
    fn qtable_codec_round_trip(
        n_states in 1usize..40,
        n_actions in 1usize..6,
        seed in 0u64..1000,
        flip_at in 0usize..200,
    ) {
        use qdpm::core::QTable;
        let mut table = QTable::new(n_states, n_actions);
        // Deterministic pseudo-random fill.
        let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        for s in 0..n_states {
            for a in 0..n_actions {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                table.set(s, a, (x as i64 as f64) * 1e-12);
                if x % 3 == 0 {
                    table.record_visit(s, a);
                }
            }
        }
        let blob = table.to_bytes();
        let back = QTable::from_bytes(&blob).unwrap();
        prop_assert_eq!(&back, &table);

        // Flip one byte somewhere: must be rejected (checksum or header).
        let mut corrupted = blob.clone();
        let pos = flip_at % corrupted.len();
        corrupted[pos] ^= 0x55;
        prop_assert!(QTable::from_bytes(&corrupted).is_err());
    }

    /// Drift generators respect their stated rate bounds for any seed.
    #[test]
    fn drift_generators_bounded(seed in 0u64..300) {
        use qdpm::workload::{RandomWalkRate, SinusoidalRate, RequestGenerator};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut sine = SinusoidalRate::new(0.4, 0.35, 500).unwrap();
        let mut walk = RandomWalkRate::new(0.2, 0.03, 0.02, 0.6).unwrap();
        for _ in 0..2_000 {
            prop_assert!((0.0..=1.0).contains(&sine.current_rate()));
            prop_assert!((0.02..=0.6).contains(&walk.current_rate()));
            sine.next_arrivals(&mut rng);
            walk.next_arrivals(&mut rng);
        }
    }
}
