//! Workspace smoke test: the `qdpm` facade re-exports resolve and the
//! README/lib.rs quickstart path runs end to end.

use qdpm::core::{PowerManager, QDpmAgent, QDpmConfig};
use qdpm::device::presets;
use qdpm::sim::{SimConfig, Simulator};
use qdpm::workload::WorkloadSpec;

/// Every facade module must resolve to its member crate: name one item per
/// re-export so a broken `pub use` fails this test at compile time.
#[test]
fn facade_reexports_resolve() {
    // qdpm::core
    let _: fn(usize, usize) -> qdpm::core::QTable = qdpm::core::QTable::new;
    // qdpm::device
    let power = qdpm::device::presets::three_state_generic();
    assert!(power.n_states() >= 2);
    // qdpm::workload
    let spec = qdpm::workload::WorkloadSpec::bernoulli(0.1).unwrap();
    assert!(spec.markov_model().is_some());
    // qdpm::mdp
    let weights = qdpm::mdp::CostWeights::new(1.0, 0.1).unwrap();
    let _ = weights;
    // qdpm::sim
    let cfg = qdpm::sim::SimConfig::default();
    assert!(cfg.queue_cap > 0);
}

/// The quickstart from `src/lib.rs`: agent + simulator + Bernoulli
/// workload for 10k slices, with sane aggregate statistics.
#[test]
fn quickstart_runs_ten_thousand_slices() {
    let power = presets::three_state_generic();
    let agent = QDpmAgent::new(&power, QDpmConfig::default()).unwrap();
    let mut sim = Simulator::new(
        power.clone(),
        presets::default_service(),
        WorkloadSpec::bernoulli(0.05).unwrap().build(),
        Box::new(agent),
        SimConfig::default(),
    )
    .unwrap();

    let steps = 10_000;
    let stats = sim.run(steps);

    assert_eq!(stats.steps, steps, "every slice must be accounted for");
    assert!(stats.total_energy > 0.0, "the device consumes energy");
    assert!(
        stats.arrivals > 0,
        "a 5% Bernoulli workload must produce arrivals in 10k slices"
    );
    assert_eq!(
        stats.arrivals,
        stats.completed + stats.dropped + sim.observation().queue_len as u64,
        "request conservation"
    );
    let p_on = power.state(power.highest_power_state()).power;
    let reduction = stats.energy_reduction_vs(p_on);
    assert!(
        (-1.0..=1.0).contains(&reduction),
        "energy reduction {reduction} must be a sane fraction"
    );
}

/// A boxed agent still implements the shared `PowerManager` interface via
/// the facade paths (what downstream users will write).
#[test]
fn boxed_power_manager_decides() {
    use rand::SeedableRng;
    let power = presets::three_state_generic();
    let mut pm: Box<dyn PowerManager> =
        Box::new(QDpmAgent::new(&power, QDpmConfig::default()).unwrap());
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let obs = qdpm::core::Observation {
        device_mode: qdpm::device::DeviceMode::Operational(power.highest_power_state()),
        queue_len: 0,
        idle_slices: 3,
        sr_mode_hint: None,
    };
    let cmd = pm.decide(&obs, &mut rng);
    assert!(cmd.index() < power.n_states());
}
