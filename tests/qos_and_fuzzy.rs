//! F3/F4 (paper future work, implemented): QoS-guaranteed Q-DPM honors its
//! latency bound; Fuzzy Q-DPM degrades gracefully under observation noise.

use qdpm::core::{FuzzyConfig, FuzzyQDpmAgent, QDpmAgent, QDpmConfig, QosConfig, QosQDpmAgent};
use qdpm::device::presets;
use qdpm::sim::{ObservationNoise, SimConfig, Simulator};
use qdpm::workload::WorkloadSpec;

#[test]
fn qos_agent_respects_queue_bound() {
    let power = presets::three_state_generic();
    let service = presets::default_service();
    let target = 0.8;
    let qos = QosQDpmAgent::new(
        &power,
        QosConfig {
            perf_target: target,
            ..QosConfig::default()
        },
    )
    .unwrap();
    let mut sim = Simulator::new(
        power.clone(),
        service,
        WorkloadSpec::bernoulli(0.15).unwrap().build(),
        Box::new(qos),
        SimConfig {
            seed: 5,
            ..SimConfig::default()
        },
    )
    .unwrap();
    // Discard the learning transient, then measure.
    sim.run(150_000);
    let steady = sim.run(150_000);
    assert!(
        steady.avg_queue_len() <= target * 1.2,
        "steady-state queue {} exceeds target {target}",
        steady.avg_queue_len()
    );
}

#[test]
fn qos_agent_saves_energy_versus_always_on() {
    let power = presets::three_state_generic();
    let service = presets::default_service();
    let qos = QosQDpmAgent::new(
        &power,
        QosConfig {
            perf_target: 1.0,
            ..QosConfig::default()
        },
    )
    .unwrap();
    let mut sim = Simulator::new(
        power.clone(),
        service,
        WorkloadSpec::bernoulli(0.05).unwrap().build(),
        Box::new(qos),
        SimConfig {
            seed: 6,
            ..SimConfig::default()
        },
    )
    .unwrap();
    sim.run(100_000);
    let steady = sim.run(100_000);
    let p_on = power.state(power.highest_power_state()).power;
    assert!(
        steady.energy_reduction_vs(p_on) > 0.2,
        "reduction {} too small",
        steady.energy_reduction_vs(p_on)
    );
}

/// Steady-state cost on the heavy-tailed (Pareto) workload where idle time
/// carries real signal — the F4 scenario. Both agents observe idle time:
/// crisp through threshold buckets, fuzzy through overlapping memberships.
fn cost_under_noise(fuzzy: bool, noise_p: f64) -> f64 {
    let power = presets::three_state_generic();
    let service = presets::default_service();
    let pm: Box<dyn qdpm::core::PowerManager> = if fuzzy {
        Box::new(FuzzyQDpmAgent::new(&power, FuzzyConfig::standard(8).unwrap()).unwrap())
    } else {
        Box::new(
            QDpmAgent::new(
                &power,
                QDpmConfig {
                    idle_thresholds: vec![2, 4, 8, 16, 32],
                    ..QDpmConfig::default()
                },
            )
            .unwrap(),
        )
    };
    let mut sim = Simulator::new(
        power,
        service,
        WorkloadSpec::Pareto {
            alpha: 1.6,
            xm: 4.0,
        }
        .build(),
        pm,
        SimConfig {
            seed: 31,
            noise: ObservationNoise {
                queue_misread_prob: noise_p,
                idle_jitter: 4,
            },
            ..SimConfig::default()
        },
    )
    .unwrap();
    sim.run(150_000);
    sim.run(150_000).avg_cost()
}

#[test]
fn fuzzy_agent_wins_on_heavy_tail_without_noise() {
    let crisp = cost_under_noise(false, 0.0);
    let fuzzy = cost_under_noise(true, 0.0);
    assert!(
        fuzzy < crisp,
        "fuzzy {fuzzy} should beat crisp {crisp} where features are continuous"
    );
}

#[test]
fn fuzzy_agent_keeps_winning_under_heavy_noise() {
    let crisp = cost_under_noise(false, 0.7);
    let fuzzy = cost_under_noise(true, 0.7);
    assert!(
        fuzzy < crisp * 1.02,
        "noisy: fuzzy {fuzzy} should stay at or below crisp {crisp}"
    );
}
