//! F2 (paper Fig. 2): on a piecewise-stationary workload, Q-DPM responds to
//! parameter switches "almost instantly", while the model-based pipeline
//! pays detection + re-estimation + re-optimization latency.

use qdpm::device::presets;
use qdpm::sim::experiment::{run_rapid_response, RapidResponseParams};
use qdpm::sim::{AdaptiveConfig, WindowPoint};

fn mean_cost_between(points: &[WindowPoint], from: u64, to: u64) -> f64 {
    let xs: Vec<f64> = points
        .iter()
        .filter(|p| p.end > from && p.end <= to)
        .map(|p| p.cost_per_slice)
        .collect();
    assert!(!xs.is_empty(), "no windows in ({from}, {to}]");
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[test]
fn qdpm_outperforms_model_based_at_revisited_switches() {
    // The paper's own reading of Fig. 2: "energy reduction may be heavily
    // affected by parameter variation (e.g., around the FIRST changing
    // point), and the proposed Q-DPM responds to the variations almost
    // instantly". The warm Q-table is what makes later re-visits of a
    // regime near-instant, while the model-based pipeline must re-detect
    // and re-optimize at EVERY switch.
    let power = presets::three_state_generic();
    let service = presets::default_service();
    let seg = 30_000u64;
    let params = RapidResponseParams {
        segments: vec![
            (seg, 0.02),
            (seg, 0.3),
            (seg, 0.02),
            (seg, 0.3),
            (seg, 0.02),
            (seg, 0.3),
        ],
        window: 2_000,
        adaptive: AdaptiveConfig {
            optimization_delay: 4_000, // the pipeline's simulated solve time
            ..AdaptiveConfig::default()
        },
        ..RapidResponseParams::default()
    };
    let report = run_rapid_response(&power, &service, &params).unwrap();
    assert_eq!(report.switch_points.len(), 5);
    assert!(
        report.model_based_resolves >= 2,
        "pipeline should re-optimize repeatedly"
    );

    // Transients after revisited switches (3rd onward: both regimes seen).
    let transient = 10_000u64;
    let mut q_total = 0.0;
    let mut m_total = 0.0;
    for &switch in &report.switch_points[2..] {
        q_total += mean_cost_between(&report.qdpm, switch, switch + transient);
        m_total += mean_cost_between(&report.model_based, switch, switch + transient);
    }
    assert!(
        q_total < m_total * 1.05,
        "q-dpm revisited-transient cost {q_total} should not exceed model-based {m_total}"
    );
}

#[test]
fn both_policies_settle_between_switches() {
    let power = presets::three_state_generic();
    let service = presets::default_service();
    let params = RapidResponseParams {
        segments: vec![(80_000, 0.02), (80_000, 0.25)],
        window: 2_000,
        ..RapidResponseParams::default()
    };
    let report = run_rapid_response(&power, &service, &params).unwrap();

    // Late in segment 2, both should be close to the clairvoyant optimum.
    let q = mean_cost_between(&report.qdpm, 140_000, 160_000);
    let c = mean_cost_between(&report.clairvoyant, 140_000, 160_000);
    assert!(
        q / c < 1.5,
        "settled q-dpm {q} should approach clairvoyant {c}"
    );
}

#[test]
fn switch_points_match_segments() {
    let power = presets::three_state_generic();
    let service = presets::default_service();
    let params = RapidResponseParams {
        segments: vec![(10_000, 0.05), (20_000, 0.2), (5_000, 0.1)],
        window: 1_000,
        ..RapidResponseParams::default()
    };
    let report = run_rapid_response(&power, &service, &params).unwrap();
    assert_eq!(report.switch_points, vec![10_000, 30_000]);
    let total: u64 = 35_000;
    assert_eq!(report.qdpm.last().unwrap().end, total);
    assert_eq!(report.model_based.last().unwrap().end, total);
}
