//! Cross-crate pinning of the workspace's canonical uniform sampler.
//!
//! `qdpm_core::rng_util` is the single sampler shared by the learners
//! (core), the simulation engine and baseline policies (sim), and the
//! request generators (workload). These tests pin its output bit-for-bit
//! for fixed seeds: any change to the mapping (or a crate quietly growing
//! its own copy with a different mapping) would shift every published
//! result, so it must fail loudly here first.

use qdpm::core::rng_util::{uniform, uniform_index};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

#[test]
fn uniform_bits_are_pinned_for_fixed_seed() {
    let mut rng = StdRng::seed_from_u64(0x00DE_C0DE);
    let expected: [u64; 4] = [
        0x3fe2_55ce_6e67_4517,
        0x3fc4_14d7_251d_b0a0,
        0x3fc8_89b8_6781_7fec,
        0x3fd4_41be_b284_4092,
    ];
    for (i, &bits) in expected.iter().enumerate() {
        assert_eq!(
            uniform(&mut rng).to_bits(),
            bits,
            "draw {i} diverged from the pinned stream"
        );
    }
}

#[test]
fn uniform_index_sequence_is_pinned_for_fixed_seed() {
    let mut rng = StdRng::seed_from_u64(7);
    let drawn: Vec<usize> = (0..8).map(|_| uniform_index(&mut rng, 5)).collect();
    assert_eq!(drawn, vec![0, 0, 3, 2, 4, 2, 3, 1]);
}

/// The sampler is the exact 53-bit mantissa mapping of the raw stream —
/// the contract every crate's former private copy implemented.
#[test]
fn uniform_matches_mantissa_method_on_raw_stream() {
    let mut a = StdRng::seed_from_u64(123);
    let mut b = StdRng::seed_from_u64(123);
    for _ in 0..100 {
        let expected = (b.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        assert_eq!(uniform(&mut a).to_bits(), expected.to_bits());
    }
}

/// Cross-crate agreement: a workload generator driven by a seeded RNG
/// produces exactly the arrivals predicted by replaying the shared sampler
/// on an identically seeded RNG — i.e. the workload crate draws through
/// the same canonical mapping.
#[test]
fn workload_generator_draws_through_the_shared_sampler() {
    use qdpm::workload::WorkloadSpec;
    let p = 0.3;
    let mut generator = WorkloadSpec::bernoulli(p).unwrap().build();
    let mut gen_rng = StdRng::seed_from_u64(99);
    let mut ref_rng = StdRng::seed_from_u64(99);
    for slice in 0..1_000 {
        let expected = u32::from(uniform(&mut ref_rng) < p);
        assert_eq!(
            generator.next_arrivals(&mut gen_rng),
            expected,
            "slice {slice}"
        );
    }
}
