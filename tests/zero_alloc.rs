//! Steady-state allocation gate for the simulation hot path.
//!
//! The paper's efficiency claim ("feasible to implement on almost any low
//! end systems") is enforced mechanically: once the simulator and the
//! Q-DPM agent are warmed up, `Simulator::step` must not touch the heap at
//! all — the legal-action table, encoder lookup, Q-row iteration, queue and
//! RNG streams are all preallocated or stack-only.
//!
//! This file holds exactly one test so the counting global allocator
//! cannot race with unrelated tests in the same binary.

// A counting global allocator requires `unsafe impl GlobalAlloc`; the
// workspace denies unsafe code everywhere else.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use qdpm::core::{QDpmAgent, QDpmConfig};
use qdpm::device::presets;
use qdpm::sim::{SimConfig, Simulator};
use qdpm::workload::WorkloadSpec;

/// Forwards to the system allocator, counting every allocation event
/// (fresh allocations and reallocations; frees are not counted).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn simulator_step_is_allocation_free_in_steady_state() {
    let power = presets::three_state_generic();
    let agent = QDpmAgent::new(&power, QDpmConfig::default()).unwrap();
    let mut sim = Simulator::new(
        power,
        presets::default_service(),
        WorkloadSpec::bernoulli(0.15).unwrap().build(),
        Box::new(agent),
        SimConfig::default(),
    )
    .unwrap();

    // Warm up: populate the queue's ring buffer high-water mark and the
    // learner's visit counters, and let the workload reach steady state.
    for _ in 0..5_000 {
        sim.step();
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..20_000 {
        sim.step();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "Simulator::step allocated {} times over 20k steady-state slices",
        after - before
    );

    // The slices actually simulated something (the gate is not vacuous).
    assert_eq!(sim.stats().steps, 25_000);
    assert!(sim.stats().arrivals > 0);
}
