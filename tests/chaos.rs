//! Failure injection: a hostile power manager that issues arbitrary (often
//! illegal) commands every slice. The device must ignore what its state
//! machine forbids, the simulator must keep all invariants, and nothing may
//! panic.

use qdpm::core::{Observation, PowerManager};
use qdpm::device::{presets, PowerStateId};
use qdpm::sim::{SimConfig, Simulator};
use qdpm::workload::WorkloadSpec;
use rand::Rng;

/// Commands a uniformly random power state each slice — legal or not.
#[derive(Debug)]
struct ChaosMonkey {
    n_states: usize,
}

impl PowerManager for ChaosMonkey {
    fn decide(&mut self, _obs: &Observation, rng: &mut dyn Rng) -> PowerStateId {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        PowerStateId::from_index(((u * self.n_states as f64) as usize).min(self.n_states - 1))
    }

    fn name(&self) -> &str {
        "chaos-monkey"
    }
}

#[test]
fn random_commands_never_break_invariants() {
    for (name, power) in [
        ("three-state", presets::three_state_generic()),
        ("ibm-hdd", presets::ibm_hdd()),
        ("wlan", presets::wlan_card()),
    ] {
        let lo = power.state(power.lowest_power_state()).power;
        let monkey = ChaosMonkey {
            n_states: power.n_states(),
        };
        let mut sim = Simulator::new(
            power.clone(),
            presets::default_service(),
            WorkloadSpec::bernoulli(0.3).unwrap().build(),
            Box::new(monkey),
            SimConfig {
                seed: 1313,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let steps = 100_000u64;
        let stats = sim.run(steps);
        let queued = sim.observation().queue_len as u64;
        // Conservation and physics hold under arbitrary command streams.
        assert_eq!(
            stats.arrivals,
            stats.completed + stats.dropped + queued,
            "{name}: conservation broken"
        );
        assert!(
            stats.total_energy >= lo * steps as f64 - 1e-9,
            "{name}: impossible (sub-minimum) energy"
        );
        assert!(stats.total_energy.is_finite(), "{name}: non-finite energy");
        assert!(stats.queue_len_sum.is_finite());
    }
}

#[test]
fn chaos_against_zero_and_saturated_load() {
    let power = presets::three_state_generic();
    for p in [0.0, 1.0] {
        let monkey = ChaosMonkey {
            n_states: power.n_states(),
        };
        let mut sim = Simulator::new(
            power.clone(),
            presets::default_service(),
            WorkloadSpec::bernoulli(p).unwrap().build(),
            Box::new(monkey),
            SimConfig {
                seed: 77,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let stats = sim.run(20_000);
        let queued = sim.observation().queue_len as u64;
        assert_eq!(stats.arrivals, stats.completed + stats.dropped + queued);
        if p == 0.0 {
            assert_eq!(stats.arrivals, 0);
        } else {
            assert_eq!(stats.arrivals, 20_000);
        }
    }
}
