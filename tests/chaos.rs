//! Failure injection: a hostile power manager that issues arbitrary (often
//! illegal) commands every slice. The device must ignore what its state
//! machine forbids, the simulator must keep all invariants, and nothing may
//! panic.

use qdpm::core::{Observation, PowerManager};
use qdpm::device::{presets, PowerStateId};
use qdpm::sim::fleet::{FleetConfig, FleetMember, FleetPolicy, FleetSim};
use qdpm::sim::hierarchy::{RackCoordinator, RackSpec, CAP_EPS};
use qdpm::sim::{ScenarioWorkload, SimConfig, Simulator};
use qdpm::workload::{DispatchPolicy, WorkloadSpec};
use rand::Rng;

/// Commands a uniformly random power state each slice — legal or not.
#[derive(Debug)]
struct ChaosMonkey {
    n_states: usize,
}

impl PowerManager for ChaosMonkey {
    fn decide(&mut self, _obs: &Observation, rng: &mut dyn Rng) -> PowerStateId {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        PowerStateId::from_index(((u * self.n_states as f64) as usize).min(self.n_states - 1))
    }

    fn name(&self) -> &str {
        "chaos-monkey"
    }
}

#[test]
fn random_commands_never_break_invariants() {
    for (name, power) in [
        ("three-state", presets::three_state_generic()),
        ("ibm-hdd", presets::ibm_hdd()),
        ("wlan", presets::wlan_card()),
    ] {
        let lo = power.state(power.lowest_power_state()).power;
        let monkey = ChaosMonkey {
            n_states: power.n_states(),
        };
        let mut sim = Simulator::new(
            power.clone(),
            presets::default_service(),
            WorkloadSpec::bernoulli(0.3).unwrap().build(),
            Box::new(monkey),
            SimConfig {
                seed: 1313,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let steps = 100_000u64;
        let stats = sim.run(steps);
        let queued = sim.observation().queue_len as u64;
        // Conservation and physics hold under arbitrary command streams.
        assert_eq!(
            stats.arrivals,
            stats.completed + stats.dropped + queued,
            "{name}: conservation broken"
        );
        assert!(
            stats.total_energy >= lo * steps as f64 - 1e-9,
            "{name}: impossible (sub-minimum) energy"
        );
        assert!(stats.total_energy.is_finite(), "{name}: non-finite energy");
        assert!(stats.queue_len_sum.is_finite());
    }
}

/// A chaos-monkey member inside a *mixed* fleet (learners and heuristics
/// alongside it) must not break any device's conservation law or energy
/// floor, in either engine mode.
#[test]
fn chaos_member_in_mixed_fleet_keeps_invariants() {
    use qdpm::sim::EngineMode;
    let power = presets::three_state_generic();
    let lo = power.state(power.lowest_power_state()).power;
    let policies = [
        FleetPolicy::ChaosMonkey,
        FleetPolicy::frozen_q_dpm(),
        FleetPolicy::BreakEvenTimeout,
        FleetPolicy::ChaosMonkey,
    ];
    let members: Vec<FleetMember> = policies
        .iter()
        .enumerate()
        .map(|(i, policy)| FleetMember {
            label: format!("dev-{i}"),
            power: power.clone(),
            service: presets::default_service(),
            policy: policy.clone(),
        })
        .collect();
    let workload = ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(0.5).unwrap());
    for engine_mode in [EngineMode::PerSlice, EngineMode::EventSkip] {
        let config = FleetConfig {
            horizon: 20_000,
            engine_mode,
            seed: 99,
            ..FleetConfig::default()
        };
        let report = FleetSim::new(&members, &workload, &config).unwrap().run(2);
        assert_eq!(report.stats.total.steps, 4 * 20_000, "{engine_mode:?}");
        for (i, stats) in report.per_device.iter().enumerate() {
            let resolved = stats.completed + stats.dropped;
            assert!(
                resolved <= stats.arrivals,
                "{engine_mode:?} dev-{i}: resolved more requests than arrived"
            );
            assert!(
                stats.arrivals - resolved <= config.queue_cap as u64,
                "{engine_mode:?} dev-{i}: unresolved requests exceed the queue"
            );
            assert!(
                stats.total_energy >= lo * stats.steps as f64 - 1e-9,
                "{engine_mode:?} dev-{i}: impossible (sub-minimum) energy"
            );
            assert!(stats.total_energy.is_finite() && stats.total_cost.is_finite());
        }
    }
}

/// A chaos-monkey member inside a power-capped rack: the budget must hold
/// the cap on *every* slice no matter what the monkey commands, and the
/// run must keep all per-device invariants without panicking.
#[test]
fn chaos_member_under_power_cap_never_exceeds_it() {
    let power = presets::three_state_generic();
    let lo = power.state(power.lowest_power_state()).power;
    let cap = 4.0;
    let spec = RackSpec {
        label: "chaos-rack".to_string(),
        members: [
            FleetPolicy::ChaosMonkey,
            FleetPolicy::BreakEvenTimeout,
            FleetPolicy::frozen_q_dpm(),
            FleetPolicy::ChaosMonkey,
        ]
        .iter()
        .enumerate()
        .map(|(i, policy)| FleetMember {
            label: format!("dev-{i}"),
            power: power.clone(),
            service: presets::default_service(),
            policy: policy.clone(),
        })
        .collect(),
        power_cap: Some(cap),
    };
    let config = FleetConfig {
        horizon: 10_000,
        dispatch: DispatchPolicy::SleepAware { spill: 2 },
        seed: 4242,
        ..FleetConfig::default()
    };
    let workload = ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(0.5).unwrap());
    let (report, per_slice) = RackCoordinator::new(&spec, &config)
        .unwrap()
        .run_probed(&workload)
        .unwrap();
    assert_eq!(per_slice.len(), 10_000);
    for (slice, &energy) in per_slice.iter().enumerate() {
        assert!(
            energy <= cap + CAP_EPS,
            "slice {slice}: rack drew {energy}, cap {cap}"
        );
    }
    for (i, stats) in report.fleet.per_device.iter().enumerate() {
        let resolved = stats.completed + stats.dropped;
        assert!(resolved <= stats.arrivals, "dev-{i}");
        assert!(
            stats.total_energy >= lo * stats.steps as f64 - 1e-9,
            "dev-{i}"
        );
        assert!(stats.total_energy.is_finite(), "dev-{i}");
    }
}

/// Chaos commands *and* injected faults at once, in both engine modes:
/// every arrival is classified exactly once — completed, dropped at
/// admission, still queued, or lost to a crash — and the energy floor
/// holds outside downtime (a down device may legally draw less than the
/// lowest operational state).
#[test]
fn chaos_with_faults_conserves_every_arrival() {
    use qdpm::device::{FaultEvent, FaultKind};
    use qdpm::sim::EngineMode;
    let power = presets::three_state_generic();
    let lo = power.state(power.lowest_power_state()).power;
    let schedule = vec![
        FaultEvent {
            at: 2_000,
            kind: FaultKind::TransientCrash {
                down_for: 500,
                down_power: 0.01,
            },
        },
        FaultEvent {
            at: 5_000,
            kind: FaultKind::Straggler {
                slowdown: 4,
                window: 1_000,
            },
        },
        FaultEvent {
            at: 9_000,
            kind: FaultKind::TransientCrash {
                down_for: 300,
                down_power: 0.0,
            },
        },
    ];
    for mode in [EngineMode::PerSlice, EngineMode::EventSkip] {
        let monkey = ChaosMonkey {
            n_states: power.n_states(),
        };
        let mut sim = Simulator::new(
            power.clone(),
            presets::default_service(),
            WorkloadSpec::bernoulli(0.4).unwrap().build(),
            Box::new(monkey),
            SimConfig {
                seed: 2718,
                mode,
                ..SimConfig::default()
            },
        )
        .unwrap();
        sim.set_fault_schedule(schedule.clone());
        let steps = 20_000u64;
        let stats = sim.run(steps);
        let faults = *sim.fault_stats();
        let queued = sim.observation().queue_len as u64;
        assert_eq!(
            stats.arrivals,
            stats.completed + stats.dropped + queued + faults.queue_lost,
            "{mode:?}: an arrival escaped classification under faults"
        );
        assert_eq!(faults.faults_injected, 3, "{mode:?}");
        assert_eq!(faults.downtime_slices, 800, "{mode:?}");
        assert!(
            stats.total_energy >= lo * (steps - faults.downtime_slices) as f64 - 1e-9,
            "{mode:?}: impossible (sub-minimum) energy outside downtime"
        );
        assert!(stats.total_energy.is_finite(), "{mode:?}");
    }
}

/// Chaos-monkey members in a *faulted* mixed fleet, both engine modes:
/// fleet-wide conservation (unresolved arrivals are exactly the final
/// queues plus crash losses), per-device energy floors net of downtime,
/// and no panic anywhere.
#[test]
fn faulted_chaos_fleet_keeps_conservation_in_both_modes() {
    use qdpm::sim::EngineMode;
    use qdpm::workload::FaultInjector;
    let power = presets::three_state_generic();
    let lo = power.state(power.lowest_power_state()).power;
    let policies = [
        FleetPolicy::ChaosMonkey,
        FleetPolicy::frozen_q_dpm(),
        FleetPolicy::BreakEvenTimeout,
        FleetPolicy::ChaosMonkey,
    ];
    let members: Vec<FleetMember> = policies
        .iter()
        .enumerate()
        .map(|(i, policy)| FleetMember {
            label: format!("dev-{i}"),
            power: power.clone(),
            service: presets::default_service(),
            policy: policy.clone(),
        })
        .collect();
    let workload = ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(0.5).unwrap());
    let faults = FaultInjector {
        crash_rate: 0.002,
        crash_down: 150,
        straggle_rate: 0.003,
        straggle_slowdown: 3,
        straggle_window: 200,
        down_power: 0.02,
        ..FaultInjector::default()
    };
    for engine_mode in [EngineMode::PerSlice, EngineMode::EventSkip] {
        let config = FleetConfig {
            horizon: 20_000,
            engine_mode,
            seed: 99,
            faults: Some(faults.clone()),
            ..FleetConfig::default()
        };
        let report = FleetSim::new(&members, &workload, &config).unwrap().run(2);
        assert_eq!(report.stats.total.steps, 4 * 20_000, "{engine_mode:?}");
        let avail = &report.stats.availability;
        assert!(
            avail.faults_injected > 0,
            "{engine_mode:?}: these rates must fire over 20k slices"
        );
        // Fleet-wide classification: what neither completed nor dropped
        // is either still queued (bounded by the queue caps) or was lost
        // to a crash — nothing else can absorb an arrival.
        let unresolved: u64 = report
            .per_device
            .iter()
            .map(|s| s.arrivals - s.completed - s.dropped)
            .sum();
        assert!(
            unresolved >= avail.queue_lost,
            "{engine_mode:?}: more crash losses than unresolved arrivals"
        );
        assert!(
            unresolved - avail.queue_lost <= (members.len() * config.queue_cap) as u64,
            "{engine_mode:?}: unresolved arrivals exceed queues + crash losses"
        );
        for (i, stats) in report.per_device.iter().enumerate() {
            let resolved = stats.completed + stats.dropped;
            assert!(
                resolved <= stats.arrivals,
                "{engine_mode:?} dev-{i}: resolved more requests than arrived"
            );
            let downtime = avail.downtime_slices[i];
            assert!(
                stats.total_energy >= lo * (stats.steps - downtime) as f64 - 1e-9,
                "{engine_mode:?} dev-{i}: impossible (sub-minimum) energy"
            );
            assert!(stats.total_energy.is_finite() && stats.total_cost.is_finite());
        }
    }
}

/// A faulted, power-capped chaos rack, both engine modes: the cap holds
/// on every slice (it stays feasible — `down_power` is under the sleeping
/// draw), the retry pipeline gives every harvested arrival exactly one
/// fate, and the rack-level arrival ledger balances: external arrivals
/// minus the all-down sheds plus re-dispatches is exactly what the
/// devices saw.
#[test]
fn faulted_chaos_rack_holds_cap_and_balances_ledger() {
    use qdpm::sim::EngineMode;
    use qdpm::workload::FaultInjector;
    use rand::SeedableRng;
    let power = presets::three_state_generic();
    let cap = 4.0;
    let spec = RackSpec {
        label: "chaos-rack".to_string(),
        members: [
            FleetPolicy::ChaosMonkey,
            FleetPolicy::BreakEvenTimeout,
            FleetPolicy::frozen_q_dpm(),
            FleetPolicy::ChaosMonkey,
        ]
        .iter()
        .enumerate()
        .map(|(i, policy)| FleetMember {
            label: format!("dev-{i}"),
            power: power.clone(),
            service: presets::default_service(),
            policy: policy.clone(),
        })
        .collect(),
        power_cap: Some(cap),
    };
    let faults = FaultInjector {
        crash_rate: 0.003,
        crash_down: 120,
        down_power: 0.02,
        ..FaultInjector::default()
    };
    let workload = ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(0.5).unwrap());
    let horizon = 10_000u64;
    let seed = 4242u64;
    for engine_mode in [EngineMode::PerSlice, EngineMode::EventSkip] {
        let config = FleetConfig {
            horizon,
            dispatch: DispatchPolicy::SleepAware { spill: 2 },
            seed,
            engine_mode,
            faults: Some(faults.clone()),
            ..FleetConfig::default()
        };
        let (report, per_slice) = RackCoordinator::new(&spec, &config)
            .unwrap()
            .run_probed(&workload)
            .unwrap();
        assert_eq!(per_slice.len() as u64, horizon, "{engine_mode:?}");
        for (slice, &energy) in per_slice.iter().enumerate() {
            assert!(
                energy <= cap + CAP_EPS,
                "{engine_mode:?} slice {slice}: rack drew {energy}, cap {cap}"
            );
        }
        let avail = &report.fleet.stats.availability;
        assert!(avail.faults_injected > 0, "{engine_mode:?}");
        assert_eq!(
            avail.retries_enqueued,
            avail.redispatched + avail.retry_pending + avail.shed_retry_exhausted,
            "{engine_mode:?}: retry pipeline lost or invented an arrival"
        );
        // Independent redraw of the aggregate stream: the rack's ledger
        // must balance against it exactly.
        let external: u64 = {
            let mut gen = workload.build().unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            (0..horizon)
                .map(|_| u64::from(gen.next_arrivals(&mut rng)))
                .sum()
        };
        assert_eq!(
            report.fleet.stats.total.arrivals,
            external - avail.shed_no_healthy + avail.redispatched,
            "{engine_mode:?}: rack arrival ledger out of balance"
        );
    }
}

/// Chaos commands, injected faults *and* deadline tagging at once, both
/// engine modes: the deadline ledger classifies every tagged arrival
/// into exactly one bucket — met, missed, dropped at admission, lost to
/// a crash, or still waiting — and its buckets reconcile with the run
/// statistics and the fault counters exactly.
#[test]
fn chaos_with_faults_and_deadlines_conserves_ledger() {
    use qdpm::device::{FaultEvent, FaultKind};
    use qdpm::sim::EngineMode;
    use qdpm::workload::DeadlineSpec;
    let power = presets::three_state_dvfs();
    let schedule = vec![
        FaultEvent {
            at: 2_000,
            kind: FaultKind::TransientCrash {
                down_for: 500,
                down_power: 0.01,
            },
        },
        FaultEvent {
            at: 9_000,
            kind: FaultKind::TransientCrash {
                down_for: 300,
                down_power: 0.0,
            },
        },
    ];
    for mode in [EngineMode::PerSlice, EngineMode::EventSkip] {
        let monkey = ChaosMonkey {
            n_states: power.n_states(),
        };
        let mut sim = Simulator::new(
            power.clone(),
            presets::default_service(),
            WorkloadSpec::bernoulli(0.4).unwrap().build(),
            Box::new(monkey),
            SimConfig {
                seed: 2718,
                mode,
                deadline: Some(DeadlineSpec::uniform(2, 10).unwrap()),
                ..SimConfig::default()
            },
        )
        .unwrap();
        sim.set_fault_schedule(schedule.clone());
        let stats = sim.run(20_000);
        let faults = *sim.fault_stats();
        let d = *sim.deadline_stats();
        let queued = sim.observation().queue_len as u64;
        assert_eq!(d.tagged, stats.arrivals, "{mode:?}: every arrival tagged");
        assert_eq!(
            d.met + d.missed,
            stats.completed,
            "{mode:?}: every completion classified"
        );
        assert_eq!(d.dropped, stats.dropped, "{mode:?}: admission drops agree");
        assert_eq!(
            d.lost, faults.queue_lost,
            "{mode:?}: crash losses agree with the fault counters"
        );
        assert_eq!(d.requeued, 0, "{mode:?}: no retry coordinator here");
        assert_eq!(
            d.tagged,
            d.settled() + queued,
            "{mode:?}: a tagged arrival escaped classification"
        );
        assert!(d.missed > 0, "{mode:?}: crashes must cause misses");
    }
}

/// Deadline-tagged chaos fleet under random fault injection, both engine
/// modes: the fleet-merged deadline ledger reconciles with the fleet
/// totals and the availability counters, and what has not settled is
/// bounded by the queues.
#[test]
fn faulted_chaos_fleet_with_deadlines_conserves_ledger() {
    use qdpm::sim::EngineMode;
    use qdpm::workload::{DeadlineSpec, FaultInjector};
    let power = presets::three_state_dvfs();
    let policies = [
        FleetPolicy::ChaosMonkey,
        FleetPolicy::frozen_q_dpm(),
        FleetPolicy::BreakEvenTimeout,
        FleetPolicy::ChaosMonkey,
    ];
    let members: Vec<FleetMember> = policies
        .iter()
        .enumerate()
        .map(|(i, policy)| FleetMember {
            label: format!("dev-{i}"),
            power: power.clone(),
            service: presets::default_service(),
            policy: policy.clone(),
        })
        .collect();
    let workload = ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(0.5).unwrap());
    let faults = FaultInjector {
        crash_rate: 0.002,
        crash_down: 150,
        down_power: 0.02,
        ..FaultInjector::default()
    };
    for engine_mode in [EngineMode::PerSlice, EngineMode::EventSkip] {
        let config = FleetConfig {
            horizon: 20_000,
            engine_mode,
            seed: 99,
            faults: Some(faults.clone()),
            deadline: Some(DeadlineSpec::uniform(3, 12).unwrap()),
            ..FleetConfig::default()
        };
        let report = FleetSim::new(&members, &workload, &config).unwrap().run(2);
        let avail = &report.stats.availability;
        let total = &report.stats.total;
        let d = &report.stats.deadline;
        assert!(avail.faults_injected > 0, "{engine_mode:?}");
        assert_eq!(d.tagged, total.arrivals, "{engine_mode:?}");
        assert_eq!(d.met + d.missed, total.completed, "{engine_mode:?}");
        assert_eq!(d.dropped, total.dropped, "{engine_mode:?}");
        assert_eq!(d.lost, avail.queue_lost, "{engine_mode:?}");
        assert_eq!(d.requeued, 0, "{engine_mode:?}: plain fleets never retry");
        let in_queue = d.tagged - d.settled();
        assert!(
            in_queue <= (members.len() * config.queue_cap) as u64,
            "{engine_mode:?}: unsettled tagged arrivals exceed the queues"
        );
    }
}

/// A faulted, power-capped chaos rack with deadline tagging, both engine
/// modes: harvested strands surface as `requeued` (matching the retry
/// pipeline's own counter), their re-dispatched copies are tagged afresh
/// at the receiving device, and the merged ledger still balances.
#[test]
fn faulted_capped_rack_with_deadlines_balances_ledger() {
    use qdpm::sim::EngineMode;
    use qdpm::workload::{DeadlineSpec, FaultInjector};
    let power = presets::three_state_generic();
    let cap = 4.0;
    let spec = RackSpec {
        label: "chaos-rack".to_string(),
        members: [
            FleetPolicy::ChaosMonkey,
            FleetPolicy::BreakEvenTimeout,
            FleetPolicy::frozen_q_dpm(),
            FleetPolicy::ChaosMonkey,
        ]
        .iter()
        .enumerate()
        .map(|(i, policy)| FleetMember {
            label: format!("dev-{i}"),
            power: power.clone(),
            service: presets::default_service(),
            policy: policy.clone(),
        })
        .collect(),
        power_cap: Some(cap),
    };
    let faults = FaultInjector {
        crash_rate: 0.003,
        crash_down: 120,
        down_power: 0.02,
        ..FaultInjector::default()
    };
    let workload = ScenarioWorkload::Stationary(WorkloadSpec::bernoulli(0.5).unwrap());
    for engine_mode in [EngineMode::PerSlice, EngineMode::EventSkip] {
        let config = FleetConfig {
            horizon: 10_000,
            dispatch: DispatchPolicy::SleepAware { spill: 2 },
            seed: 4242,
            engine_mode,
            faults: Some(faults.clone()),
            deadline: Some(DeadlineSpec::uniform(3, 12).unwrap()),
            ..FleetConfig::default()
        };
        let report = RackCoordinator::new(&spec, &config)
            .unwrap()
            .run(&workload, 2)
            .unwrap();
        let avail = &report.fleet.stats.availability;
        let total = &report.fleet.stats.total;
        let d = &report.fleet.stats.deadline;
        assert!(avail.faults_injected > 0, "{engine_mode:?}");
        assert_eq!(d.tagged, total.arrivals, "{engine_mode:?}");
        assert_eq!(d.met + d.missed, total.completed, "{engine_mode:?}");
        assert_eq!(d.dropped, total.dropped, "{engine_mode:?}");
        assert_eq!(
            d.requeued, avail.retries_enqueued,
            "{engine_mode:?}: harvested strands must all surface as requeued"
        );
        assert_eq!(d.lost, avail.queue_lost, "{engine_mode:?}");
        let in_queue = d.tagged - d.settled();
        assert!(
            in_queue <= (spec.members.len() * config.queue_cap) as u64,
            "{engine_mode:?}: unsettled tagged arrivals exceed the queues"
        );
    }
}

#[test]
fn chaos_against_zero_and_saturated_load() {
    let power = presets::three_state_generic();
    for p in [0.0, 1.0] {
        let monkey = ChaosMonkey {
            n_states: power.n_states(),
        };
        let mut sim = Simulator::new(
            power.clone(),
            presets::default_service(),
            WorkloadSpec::bernoulli(p).unwrap().build(),
            Box::new(monkey),
            SimConfig {
                seed: 77,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let stats = sim.run(20_000);
        let queued = sim.observation().queue_len as u64;
        assert_eq!(stats.arrivals, stats.completed + stats.dropped + queued);
        if p == 0.0 {
            assert_eq!(stats.arrivals, 0);
        } else {
            assert_eq!(stats.arrivals, 20_000);
        }
    }
}
