//! Steady-state allocation gate for the fuzzy agent's hot path.
//!
//! PR 3 left `FuzzyQDpmAgent` as the one agent still allocating per slice
//! (its active-cell list). With membership grades and rule strengths
//! precomputed into dense lookup tables and the cell buffers recycled
//! between decide/observe, the fuzzy per-slice path joins the
//! zero-allocation club.
//!
//! This file holds exactly one test so the counting global allocator
//! cannot race with unrelated tests in the same binary (it is a separate
//! test target, so it runs in its own process).

// A counting global allocator requires `unsafe impl GlobalAlloc`; the
// workspace denies unsafe code everywhere else.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use qdpm::core::{FuzzyConfig, FuzzyQDpmAgent};
use qdpm::device::presets;
use qdpm::sim::{SimConfig, Simulator};
use qdpm::workload::WorkloadSpec;

/// Forwards to the system allocator, counting every allocation event
/// (fresh allocations and reallocations; frees are not counted).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn fuzzy_agent_step_is_allocation_free_in_steady_state() {
    let power = presets::three_state_generic();
    let agent = FuzzyQDpmAgent::new(&power, FuzzyConfig::standard(8).unwrap()).unwrap();
    let mut sim = Simulator::new(
        power,
        presets::default_service(),
        WorkloadSpec::bernoulli(0.15).unwrap().build(),
        Box::new(agent),
        SimConfig::default(),
    )
    .unwrap();

    // Warm up: the cell buffers reach their high-water capacity within the
    // first few slices; give the queue and workload time to as well.
    for _ in 0..5_000 {
        sim.step();
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..20_000 {
        sim.step();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "fuzzy Simulator::step allocated {} times over 20k steady-state slices",
        after - before
    );
    assert_eq!(sim.stats().steps, 25_000);
    assert!(sim.stats().arrivals > 0);
}
