//! F1 (paper Fig. 1): Q-DPM converges toward the analytically optimal
//! policy on a stationary workload, despite knowing nothing of the model.

use qdpm::device::presets;
use qdpm::sim::experiment::{run_convergence, tail_mean_cost, ConvergenceParams};

#[test]
fn qdpm_converges_to_near_optimal_cost() {
    let power = presets::three_state_generic();
    let service = presets::default_service();
    let params = ConvergenceParams {
        arrival_p: 0.05,
        horizon: 300_000,
        window: 5_000,
        ..ConvergenceParams::default()
    };
    let report = run_convergence(&power, &service, &params).unwrap();

    // Orientation: optimum strictly beats always-on for this light load.
    assert!(report.optimal_gain > 0.0);
    assert!(
        report.always_on_gain > 1.5 * report.optimal_gain,
        "DPM should matter: always-on {} vs optimal {}",
        report.always_on_gain,
        report.optimal_gain
    );

    // Convergence: the tail of the learning curve sits near the optimum.
    let tail = tail_mean_cost(&report.qdpm, 10);
    assert!(
        tail / report.optimal_gain < 1.35,
        "tail cost {tail} vs optimal {} (ratio {})",
        report.optimal_gain,
        tail / report.optimal_gain
    );

    // Improvement over time: late windows beat early windows decisively.
    let early = tail_mean_cost(&report.qdpm[..5], 5);
    assert!(
        tail < early,
        "learning should reduce cost: early {early}, late {tail}"
    );
}

#[test]
fn measured_optimal_tracks_analytic_gain() {
    let power = presets::three_state_generic();
    let service = presets::default_service();
    let params = ConvergenceParams {
        arrival_p: 0.1,
        horizon: 150_000,
        window: 5_000,
        ..ConvergenceParams::default()
    };
    let report = run_convergence(&power, &service, &params).unwrap();
    let measured = tail_mean_cost(&report.optimal, 20);
    assert!(
        (measured - report.optimal_gain).abs() / report.optimal_gain < 0.1,
        "measured {measured} vs gain {}",
        report.optimal_gain
    );
}

#[test]
fn convergence_holds_across_loads() {
    // "After studying many cases, we conclude that Q-DPM can approximate
    // the theoretically optimal policy at reasonable speed."
    let power = presets::three_state_generic();
    let service = presets::default_service();
    for (p, max_ratio) in [(0.02, 1.4), (0.1, 1.35), (0.3, 1.3)] {
        let params = ConvergenceParams {
            arrival_p: p,
            horizon: 250_000,
            window: 5_000,
            seed: 17,
            ..ConvergenceParams::default()
        };
        let report = run_convergence(&power, &service, &params).unwrap();
        let tail = tail_mean_cost(&report.qdpm, 10);
        assert!(
            tail / report.optimal_gain < max_ratio,
            "p={p}: tail {tail} vs optimal {} exceeds ratio {max_ratio}",
            report.optimal_gain
        );
    }
}
