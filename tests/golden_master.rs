//! Golden-master gate: every committed `results/*.tsv` must regenerate
//! byte-identically from the current code.
//!
//! The published TSVs are produced by the `qdpm-bench` binaries under
//! pinned seeds and the repo's deterministic parallel runner (output is
//! byte-identical at any thread count), so any diff — a reordered float
//! fold, a drifted RNG stream, a changed default — is a behavior change
//! that must be intentional and reviewed, not incidental. This pins the
//! single-device pipeline through fleet-scale refactors.
//!
//! The test is `#[ignore]`d by default because a full regeneration costs
//! minutes; CI runs it in a dedicated job via
//! `cargo test --release --test golden_master -- --ignored`. To refresh
//! the masters intentionally, run the binaries (they mirror into
//! `results/`) and commit the diff.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Which binary regenerates which committed results file.
const REGENERATORS: &[(&str, &str)] = &[
    ("table_memory", "table_memory.tsv"),
    ("table_ablation", "table_ablation.tsv"),
    ("fig2", "fig2_rapid_response.tsv"),
    ("table_sweep", "table_sweep.tsv"),
    ("frontier_dvfs", "frontier_dvfs.tsv"),
];

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// First line where two texts differ, for a reviewable failure message.
fn first_diff_line(fresh: &str, golden: &str) -> String {
    for (i, (f, g)) in fresh.lines().zip(golden.lines()).enumerate() {
        if f != g {
            return format!("line {}: fresh {f:?} vs golden {g:?}", i + 1);
        }
    }
    format!(
        "line counts differ: fresh {} vs golden {}",
        fresh.lines().count(),
        golden.lines().count()
    )
}

#[test]
#[ignore = "regenerates every committed results/*.tsv (minutes); CI runs it with --ignored"]
fn results_tsvs_regenerate_byte_identically() {
    let root = workspace_root();
    let results = root.join("results");

    // Every committed TSV must have a known regenerator — a new results
    // file without a golden-master entry silently escapes the gate.
    let committed: Vec<String> = std::fs::read_dir(&results)
        .expect("results/ exists")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.ends_with(".tsv"))
        .collect();
    assert!(!committed.is_empty(), "no committed results to pin");
    for name in &committed {
        assert!(
            REGENERATORS.iter().any(|(_, file)| file == name),
            "results/{name} has no entry in the golden-master map — add its \
             regenerating binary to REGENERATORS"
        );
    }

    let fresh_dir = std::env::temp_dir().join("qdpm-golden-master");
    let _ = std::fs::remove_dir_all(&fresh_dir);
    std::fs::create_dir_all(&fresh_dir).expect("create fresh results dir");
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());

    for (bin, file) in REGENERATORS {
        if !committed.iter().any(|name| name == file) {
            continue; // not (yet) a committed master
        }
        let status = Command::new(&cargo)
            .args(["run", "--release", "-q", "-p", "qdpm-bench", "--bin", bin])
            .env("QDPM_RESULTS_DIR", &fresh_dir)
            .current_dir(&root)
            .stdout(std::process::Stdio::null())
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
        assert!(status.success(), "{bin} exited with {status}");
        let fresh = std::fs::read(fresh_dir.join(file))
            .unwrap_or_else(|e| panic!("{bin} produced no {file}: {e}"));
        let golden = std::fs::read(results.join(file))
            .unwrap_or_else(|e| panic!("missing committed results/{file}: {e}"));
        assert!(
            fresh == golden,
            "{bin}: fresh {file} differs from the committed master — {}",
            first_diff_line(
                &String::from_utf8_lossy(&fresh),
                &String::from_utf8_lossy(&golden)
            )
        );
    }

    let _ = std::fs::remove_dir_all(&fresh_dir);
}

/// The map itself stays valid: regenerator binaries must exist as bench
/// targets (cheap guard that runs in the default suite).
#[test]
fn golden_master_map_names_real_binaries() {
    let bins_dir = workspace_root().join("crates/bench/src/bin");
    for (bin, _) in REGENERATORS {
        assert!(
            bins_dir.join(format!("{bin}.rs")).is_file(),
            "golden-master map names unknown binary {bin}"
        );
    }
}

/// Paths referenced by the gate exist (cheap guard in the default suite).
fn assert_dir(p: &Path) {
    assert!(p.is_dir(), "{} missing", p.display());
}

#[test]
fn golden_master_paths_exist() {
    assert_dir(&workspace_root().join("results"));
    assert_dir(&workspace_root().join("crates/bench/src/bin"));
}
