//! F5: continuous parameter drift. Q-DPM must track a sinusoidal rate
//! sweep at cost comparable to the model-based pipeline — while performing
//! zero policy re-optimizations (the pipeline needs ~one per window).

use qdpm::device::presets;
use qdpm::sim::experiment::{run_drift, DriftParams};

#[test]
fn qdpm_tracks_drift_competitively_without_resolves() {
    let power = presets::three_state_generic();
    let service = presets::default_service();
    let params = DriftParams {
        horizon: 160_000,
        ..DriftParams::default()
    };
    let report = run_drift(&power, &service, &params).unwrap();

    let mean = |pts: &[qdpm::sim::WindowPoint]| {
        pts.iter().map(|p| p.cost_per_slice).sum::<f64>() / pts.len() as f64
    };
    let q = mean(&report.qdpm);
    let m = mean(&report.model_based);
    // The pipeline re-optimizes continuously to keep up...
    assert!(
        report.model_based_resolves > 10,
        "pipeline should re-solve repeatedly under drift, got {}",
        report.model_based_resolves
    );
    // ...Q-DPM stays within 10% of it with zero re-optimizations.
    assert!(
        q < m * 1.10,
        "q-dpm drift cost {q} should be within 10% of model-based {m}"
    );
}

#[test]
fn both_track_above_clairvoyant_bound() {
    let power = presets::three_state_generic();
    let service = presets::default_service();
    let params = DriftParams {
        horizon: 120_000,
        ..DriftParams::default()
    };
    let report = run_drift(&power, &service, &params).unwrap();
    // Window-by-window, no policy can beat the clairvoyant instantaneous
    // optimum by more than stochastic noise.
    let n = report.qdpm.len();
    let mut violations = 0;
    for i in 0..n {
        if report.qdpm[i].cost_per_slice < report.clairvoyant_gain[i] * 0.85 {
            violations += 1;
        }
    }
    assert!(
        violations <= n / 10,
        "{violations}/{n} windows beat the clairvoyant bound by >15% — accounting bug?"
    );
}
